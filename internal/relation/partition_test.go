package relation

import (
	"testing"

	"spq/internal/dist"
	"spq/internal/rng"
)

// partRelation builds a 1-feature relation with two well-separated clusters.
func partRelation(t *testing.T, n int) *Relation {
	t.Helper()
	col := make([]float64, n)
	for i := range col {
		if i < n/2 {
			col[i] = float64(i) * 0.01
		} else {
			col[i] = 10 + float64(i)*0.01
		}
	}
	rel := New("r", n)
	if err := rel.AddDet("v", col); err != nil {
		t.Fatal(err)
	}
	return rel
}

func checkCover(t *testing.T, p *Partitioning, n int) {
	t.Helper()
	total := 0
	for gid, members := range p.Groups {
		total += len(members)
		med := p.Medoids[gid]
		found := false
		for _, m := range members {
			if m == med {
				found = true
			}
		}
		if !found {
			t.Fatalf("medoid %d not a member of group %d", med, gid)
		}
	}
	if total != n {
		t.Fatalf("groups cover %d tuples, want %d", total, n)
	}
	for i, g := range p.GroupOf {
		inGroup := false
		for _, m := range p.Groups[g] {
			if m == i {
				inGroup = true
			}
		}
		if !inGroup {
			t.Fatalf("tuple %d not in its own group %d", i, g)
		}
	}
	// Shards cover every group exactly once, in contiguous runs.
	seen := 0
	next := 0
	for s, groups := range p.ShardGroups {
		for _, g := range groups {
			if g != next {
				t.Fatalf("shard %d holds group %d, want contiguous run at %d", s, g, next)
			}
			next++
			seen++
		}
	}
	if seen != p.NumGroups() {
		t.Fatalf("shards cover %d groups, want %d", seen, p.NumGroups())
	}
	for s := range p.ShardGroups {
		for _, tup := range p.ShardTuples(s) {
			if p.ShardOf[tup] != s {
				t.Fatalf("tuple %d in ShardTuples(%d) but ShardOf = %d", tup, s, p.ShardOf[tup])
			}
		}
	}
}

func TestPartitionKMeansBasics(t *testing.T) {
	n := 40
	rel := partRelation(t, n)
	p, err := rel.Partition(PartitionSpec{Features: []string{"v"}, GroupSize: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) < 2 {
		t.Fatalf("got %d groups, want ≥ 2", len(p.Groups))
	}
	checkCover(t, p, n)
	// The two natural clusters should not be merged.
	if p.GroupOf[0] == p.GroupOf[n-1] {
		t.Fatal("separated clusters merged")
	}
}

func TestPartitionCachePerVersion(t *testing.T) {
	rel := partRelation(t, 40)
	spec := PartitionSpec{Features: []string{"v"}, GroupSize: 10, Seed: 3, Shards: 2}
	a, err := rel.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rel.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical spec on unchanged relation rebuilt the partitioning")
	}
	// A different spec gets its own entry; the first stays cached.
	other, err := rel.Partition(PartitionSpec{Features: []string{"v"}, GroupSize: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Fatal("different spec shared a cache entry")
	}
	if again, _ := rel.Partition(spec); again != a {
		t.Fatal("cache entry evicted by an unrelated spec")
	}
	// A version bump (schema/means mutation) invalidates the entry.
	if err := rel.AddDet("w", make([]float64, 40)); err != nil {
		t.Fatal(err)
	}
	c, err := rel.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("version bump did not invalidate the cached partitioning")
	}
	if c.Version != rel.Version() {
		t.Fatalf("rebuilt partitioning has version %d, relation is at %d", c.Version, rel.Version())
	}
}

func TestPartitionGroupCacheSharedAcrossShardCounts(t *testing.T) {
	rel := partRelation(t, 40)
	spec := PartitionSpec{Features: []string{"v"}, GroupSize: 10, Seed: 3}
	a, err := rel.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = 4
	b, err := rel.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different shard counts shared one Partitioning")
	}
	// The clustering level is computed once: both partitionings must share
	// the same backing arrays.
	if &a.GroupOf[0] != &b.GroupOf[0] || &a.Medoids[0] != &b.Medoids[0] {
		t.Fatal("shard-count change re-ran the clustering")
	}
	if b.NumShards() != 4 {
		t.Fatalf("shards = %d, want 4", b.NumShards())
	}
}

func TestPartitionDeterministicAcrossRelations(t *testing.T) {
	// Same data, two relation instances: identical partitionings.
	mk := func() *Relation {
		col := make([]float64, 30)
		s := rng.NewStream(3)
		for i := range col {
			col[i] = s.Float64()
		}
		rel := New("r", 30)
		if err := rel.AddDet("v", col); err != nil {
			t.Fatal(err)
		}
		return rel
	}
	spec := PartitionSpec{Features: []string{"v"}, GroupSize: 10, Seed: 7, Shards: 3}
	a, err := mk().Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.GroupOf {
		if a.GroupOf[i] != b.GroupOf[i] || a.ShardOf[i] != b.ShardOf[i] {
			t.Fatal("partitioning not deterministic for fixed seed")
		}
	}
}

func TestPartitionStrategies(t *testing.T) {
	n := 50
	rel := partRelation(t, n)
	for _, spec := range []PartitionSpec{
		{Strategy: PartitionHash, GroupSize: 8, Seed: 5, Shards: 4},
		{Strategy: PartitionRange, Features: []string{"v"}, GroupSize: 8, Shards: 4},
	} {
		p, err := rel.Partition(spec)
		if err != nil {
			t.Fatalf("%v: %v", spec.Strategy, err)
		}
		checkCover(t, p, n)
		for _, g := range p.Groups {
			if len(g) > 8 {
				t.Fatalf("%v: group of %d tuples exceeds τ=8", spec.Strategy, len(g))
			}
		}
	}
	// Range groups are contiguous in value order.
	p, err := rel.Partition(PartitionSpec{Strategy: PartitionRange, Features: []string{"v"}, GroupSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := rel.Det("v")
	for g := 1; g < p.NumGroups(); g++ {
		prevMax := col[p.Groups[g-1][len(p.Groups[g-1])-1]]
		curMin := col[p.Groups[g][0]]
		if curMin < prevMax {
			t.Fatalf("range groups out of order: group %d starts at %v below %v", g, curMin, prevMax)
		}
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	empty := New("e", 0)
	if p, err := empty.Partition(PartitionSpec{Strategy: PartitionHash}); err != nil || len(p.Groups) != 0 {
		t.Fatalf("empty relation: p=%+v err=%v", p, err)
	}
	rel := New("r", 3)
	if err := rel.AddDet("v", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p, err := rel.Partition(PartitionSpec{Features: []string{"v"}, GroupSize: 100, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 1 {
		t.Fatalf("got %d groups, want 1 (τ larger than n)", len(p.Groups))
	}
	if p.NumShards() != 1 {
		t.Fatalf("shards not clamped to group count: %d", p.NumShards())
	}
	// Constant feature column: still valid (span guard).
	flat := New("f", 4)
	if err := flat.AddDet("v", []float64{5, 5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	p2, err := flat.Partition(PartitionSpec{Features: []string{"v"}, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, p2, 4)
	// Unknown feature and missing features error cleanly.
	if _, err := rel.Partition(PartitionSpec{Features: []string{"nope"}}); err == nil {
		t.Fatal("unknown feature column accepted")
	}
	if _, err := rel.Partition(PartitionSpec{}); err == nil {
		t.Fatal("k-means with no features accepted")
	}
	// Negative sizes (unvalidated client input) take defaults, not panics.
	p3, err := rel.Partition(PartitionSpec{Features: []string{"v"}, GroupSize: -5, KMeansIters: -1, Shards: -2})
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, p3, 3)
}

func TestShardViewPreservesSubstreams(t *testing.T) {
	n := 24
	rel := New("r", n)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i % 6)
	}
	if err := rel.AddDet("v", vals); err != nil {
		t.Fatal(err)
	}
	dists := make([]dist.Dist, n)
	for i := range dists {
		dists[i] = dist.Normal{Mu: float64(i), Sigma: 1}
	}
	if err := rel.AddStoch("g", &IndependentVG{AttrID: 1, Dists: dists}); err != nil {
		t.Fatal(err)
	}
	p, err := rel.Partition(PartitionSpec{Features: []string{"v"}, GroupSize: 4, Seed: 2, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(11)
	for s := 0; s < p.NumShards(); s++ {
		shard, err := rel.Shard(p, s)
		if err != nil {
			t.Fatal(err)
		}
		want := p.ShardTuples(s)
		if shard.N() != len(want) {
			t.Fatalf("shard %d has %d tuples, want %d", s, shard.N(), len(want))
		}
		for row := 0; row < shard.N(); row++ {
			base := shard.OrigIndex(row)
			if p.ShardOf[base] != s {
				t.Fatalf("shard %d row %d maps to tuple %d of shard %d", s, row, base, p.ShardOf[base])
			}
			// Substream identity: the view realizes exactly the base tuple's
			// values.
			got, err := shard.Value(src, "g", row, 3)
			if err != nil {
				t.Fatal(err)
			}
			wantV, err := rel.Value(src, "g", base, 3)
			if err != nil {
				t.Fatal(err)
			}
			if got != wantV {
				t.Fatalf("shard view changed realization: %v vs %v", got, wantV)
			}
		}
	}
	if _, err := rel.Shard(p, p.NumShards()); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
