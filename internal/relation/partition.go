// Partitioning is the storage half of the partition-aware solve pipeline:
// a first-class descriptor of a tuple partitioning (shard → tuple index
// sets) that the sketch layer and the engine plan against. Partitionings
// are built once per (spec, relation version) and cached on the relation,
// so repeated queries — and the engine's cached plans — never re-cluster.
//
// A partitioning has two levels. *Groups* are the τ-sized cells of
// SketchRefine (Brucato et al., VLDB 2018): similar tuples with one
// representative (medoid) each. *Shards* are contiguous runs of groups that
// form the unit of parallel sketch solving; a 1-shard partitioning is
// exactly the classic single-solve sketch. Groups are built by one of three
// strategies (seeded k-means over feature columns, hash, or range on a
// feature column); shards always split the group list into near-equal
// contiguous runs, which keeps shard composition deterministic and
// independent of worker count.

package relation

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"spq/internal/rng"
)

// PartitionStrategy selects how tuples are grouped.
type PartitionStrategy int

const (
	// PartitionKMeans clusters tuples by seeded k-means over the spec's
	// feature columns (the SketchRefine default: groups hold similar
	// tuples, so a medoid represents its group well).
	PartitionKMeans PartitionStrategy = iota
	// PartitionHash assigns tuples to groups by a seeded hash of the tuple
	// index: uniform, feature-free, and O(N).
	PartitionHash
	// PartitionRange sorts tuples by the first feature column and cuts the
	// order into consecutive τ-sized groups.
	PartitionRange
)

func (s PartitionStrategy) String() string {
	switch s {
	case PartitionKMeans:
		return "kmeans"
	case PartitionHash:
		return "hash"
	case PartitionRange:
		return "range"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// PartitionSpec describes how to build a Partitioning. The zero value means
// k-means with τ = 64 over the spec's features, 12 Lloyd iterations, one
// shard.
type PartitionSpec struct {
	// Strategy selects the grouping algorithm.
	Strategy PartitionStrategy
	// Features names the attribute columns to cluster on (deterministic
	// columns pass through; stochastic attributes contribute their cached
	// mean columns). Required for KMeans and Range; ignored by Hash.
	Features []string
	// GroupSize is the partitioning threshold τ: groups hold at most ~τ
	// tuples (default 64).
	GroupSize int
	// KMeansIters bounds Lloyd iterations (default 12).
	KMeansIters int
	// Seed drives k-means initialization and the hash strategy.
	Seed uint64
	// Shards is the number of solver shards the groups are split into
	// (default 1 = the classic single sketch solve). Clamped to the number
	// of groups.
	Shards int
}

func (s PartitionSpec) withDefaults() PartitionSpec {
	// Non-positive values (possibly from unvalidated client input) take the
	// defaults: a negative τ would reach the chunk-splitting loops as a
	// negative slice bound.
	if s.GroupSize <= 0 {
		s.GroupSize = 64
	}
	if s.KMeansIters <= 0 {
		s.KMeansIters = 12
	}
	if s.Shards <= 0 {
		s.Shards = 1
	}
	return s
}

// groupKey renders the grouping-relevant spec fields canonically: two specs
// differing only in Shards share the (expensive) clustering work.
func (s PartitionSpec) groupKey() string {
	return fmt.Sprintf("%s|tau=%d|iters=%d|seed=%d|feat=%s",
		s.Strategy, s.GroupSize, s.KMeansIters, s.Seed,
		strings.Join(s.Features, ","))
}

// key renders the spec canonically for the relation's partition cache.
func (s PartitionSpec) key() string {
	return fmt.Sprintf("%s|shards=%d", s.groupKey(), s.Shards)
}

// Partitioning is a cached tuple partitioning of one relation version.
// It is immutable after construction and safe to share across goroutines.
type Partitioning struct {
	// Spec is the (defaulted) spec the partitioning was built from.
	Spec PartitionSpec
	// Version is the relation version the partitioning was built against.
	Version uint64

	// GroupOf maps each tuple to its group id.
	GroupOf []int
	// Groups lists tuple indices per group.
	Groups [][]int
	// Medoids holds the representative tuple per group.
	Medoids []int

	// ShardOf maps each tuple to its shard.
	ShardOf []int
	// ShardGroups lists the group ids of each shard (contiguous runs of the
	// group order).
	ShardGroups [][]int
}

// NumGroups returns the number of groups.
func (p *Partitioning) NumGroups() int { return len(p.Groups) }

// NumShards returns the number of shards.
func (p *Partitioning) NumShards() int { return len(p.ShardGroups) }

// ShardTuples returns the tuple index set of one shard, in tuple order
// within each group, groups in shard order.
func (p *Partitioning) ShardTuples(shard int) []int {
	var out []int
	for _, g := range p.ShardGroups[shard] {
		out = append(out, p.Groups[g]...)
	}
	return out
}

// maxCachedPartitionings bounds each of the per-relation partition caches.
// Specs are influenced by clients (the engine's sketch options come from
// the request), so the caches cannot be allowed to grow with spec churn;
// past the cap they reset wholesale — the next request simply recomputes.
const maxCachedPartitionings = 16

// Partition returns the relation's partitioning for the spec, building and
// caching it on first use. The cache is keyed by the canonical spec and
// invalidated by the relation's version counter, so partitioning is computed
// once per relation version instead of inside every sketch solve. Safe for
// concurrent use; the (possibly expensive) clustering runs outside the
// cache lock, so concurrent cache hits never block behind a build. Two
// goroutines racing on the same uncached spec may both build — wasted work,
// never a wrong answer (building is a pure function of spec + columns), and
// the first stored descriptor wins so callers still share one pointer.
func (r *Relation) Partition(spec PartitionSpec) (*Partitioning, error) {
	spec = spec.withDefaults()
	key := spec.key()
	gkey := spec.groupKey()

	// Snapshots delegate to the base relation's cache: every snapshot of
	// one version shares the cached partitionings, and partitionings of
	// older versions stay available as patch sources across epochs.
	host := r.Base()

	host.partMu.Lock()
	version := r.Version()
	if p, ok := host.parts[key]; ok && p.Version == version {
		host.partMu.Unlock()
		return p, nil
	}
	var prev *Partitioning
	if p, ok := host.parts[key]; ok && p.Version < version {
		prev = p
	}
	gs, ok := host.groupSets[gkey]
	if !ok || gs.version != version {
		gs = nil
	}
	host.partMu.Unlock()

	var p *Partitioning
	if gs == nil && prev != nil {
		// Delta-scoped reuse: a cached partitioning of an older version is
		// retained (rebased) when the delta footprint is disjoint from the
		// clustering inputs, or patched (only affected shards re-clustered)
		// when per-tuple changes are known. Falls through to a full rebuild
		// when the history is unavailable or the change is structural.
		if cs, ok := host.Changes(prev.Version); ok && cs.To == version && !cs.Wholesale {
			p = r.reusePartitioning(prev, spec, cs, version)
		}
	}
	if p == nil {
		if gs == nil {
			var err error
			if gs, err = r.buildGroups(spec, version); err != nil {
				return nil, err
			}
			partsRebuilt.Add(1)
		}
		p = assemblePartitioning(spec, gs, r.n)
	} else {
		gs = &groupSet{version: version, groupOf: p.GroupOf, groups: p.Groups, medoids: p.Medoids}
	}

	host.partMu.Lock()
	defer host.partMu.Unlock()
	if host.parts == nil {
		host.parts = map[string]*Partitioning{}
	}
	if host.groupSets == nil {
		host.groupSets = map[string]*groupSet{}
	}
	cur := host.Version()
	// Purge entries that can no longer serve as patch sources (their
	// version fell off the delta log), then bound both caches (specs are
	// client-influenced via the engine, so they must not grow unboundedly).
	for k, v := range host.parts {
		if v.Version == cur {
			continue
		}
		if _, ok := host.Changes(v.Version); !ok {
			delete(host.parts, k)
		}
	}
	for k, v := range host.groupSets {
		if v.version == cur {
			continue
		}
		if _, ok := host.Changes(v.version); !ok {
			delete(host.groupSets, k)
		}
	}
	if len(host.parts) >= maxCachedPartitionings {
		clear(host.parts)
	}
	if len(host.groupSets) >= maxCachedPartitionings {
		clear(host.groupSets)
	}
	if incumbent, ok := host.parts[key]; ok {
		if incumbent.Version == version {
			return incumbent, nil // a concurrent build won the race
		}
		if incumbent.Version > version {
			// A pre-delta snapshot rebuilt for its own (older) version while
			// the cache already moved on: hand the snapshot its matching
			// partitioning without clobbering the newer cache entry.
			return p, nil
		}
	}
	host.parts[key] = p
	host.groupSets[gkey] = gs
	return p, nil
}

// reusePartitioning tries to carry a cached partitioning of an older
// version forward through a change set: rebased untouched when the
// footprint misses the clustering inputs, patched shard-wise when only
// deterministic feature cells changed or tuples were appended. Returns nil
// when a full rebuild is required.
func (r *Relation) reusePartitioning(prev *Partitioning, spec PartitionSpec, cs *ChangeSet, version uint64) *Partitioning {
	featuresTouched := cs.Touches(spec.Features)
	if !featuresTouched && !cs.MembershipChanged() {
		np := *prev
		np.Version = version
		partsRetained.Add(1)
		shardsRetained.Add(int64(prev.NumShards()))
		return &np
	}
	if cs.Deleted || cs.Wholesale {
		return nil // the index space shifted: per-tuple patching is unsound
	}
	for _, a := range cs.Attrs {
		for _, f := range spec.Features {
			if a == f {
				return nil // a whole feature column changed (VG replaced)
			}
		}
	}
	if prev.NumShards() == 0 || len(prev.ShardOf) == 0 {
		return nil
	}
	p, err := r.patchPartitioning(prev, spec, cs, version)
	if err != nil {
		return nil
	}
	return p
}

// patchPartitioning re-clusters only the shards whose tuples were touched
// by the change set (plus the shards that deterministically receive the
// appended tuples) and splices them into the previous partitioning. The
// patched result is a valid partitioning of the new version but is not
// guaranteed to be bit-identical to a cold rebuild — clustering is local to
// the affected shards, which is the point.
func (r *Relation) patchPartitioning(prev *Partitioning, spec PartitionSpec, cs *ChangeSet, version uint64) (*Partitioning, error) {
	numShards := prev.NumShards()
	prevN := len(prev.ShardOf)
	affected := make([]bool, numShards)
	// Tuples whose feature cells changed may belong in a different group.
	touchesFeatures := cs.Touches(spec.Features)
	if touchesFeatures {
		for _, t := range cs.Tuples {
			if t < prevN {
				affected[prev.ShardOf[t]] = true
			}
		}
	}

	var features [][]float64
	if spec.Strategy != PartitionHash {
		var err error
		if features, err = r.featureCols(spec.Features); err != nil {
			return nil, err
		}
	}

	// Route each appended tuple to a shard deterministically: by seeded
	// index hash for hash partitionings, by nearest medoid (on the current
	// feature values) otherwise.
	appendTo := make([][]int, numShards)
	for t := prevN; t < r.n; t++ {
		var s int
		if spec.Strategy == PartitionHash {
			s = int(rng.Mix(spec.Seed, 0x9a54c1, uint64(t)) % uint64(numShards))
		} else {
			best, bestD := 0, math.Inf(1)
			for g, m := range prev.Medoids {
				d := 0.0
				for _, col := range features {
					diff := col[t] - col[m]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = g, d
				}
			}
			s = prev.shardOfGroup(best)
		}
		affected[s] = true
		appendTo[s] = append(appendTo[s], t)
	}

	p := &Partitioning{Spec: spec, Version: version}
	p.ShardGroups = make([][]int, numShards)
	rebuilt, retained := 0, 0
	for s := 0; s < numShards; s++ {
		if !affected[s] {
			for _, g := range prev.ShardGroups[s] {
				gid := len(p.Groups)
				p.Groups = append(p.Groups, prev.Groups[g])
				p.Medoids = append(p.Medoids, prev.Medoids[g])
				p.ShardGroups[s] = append(p.ShardGroups[s], gid)
			}
			retained++
			continue
		}
		idx := append(prev.ShardTuples(s), appendTo[s]...)
		sort.Ints(idx)
		groups, medoids, err := r.regroupSubset(spec, features, idx)
		if err != nil {
			return nil, err
		}
		for gi, g := range groups {
			gid := len(p.Groups)
			p.Groups = append(p.Groups, g)
			p.Medoids = append(p.Medoids, medoids[gi])
			p.ShardGroups[s] = append(p.ShardGroups[s], gid)
		}
		rebuilt++
	}
	p.GroupOf = make([]int, r.n)
	p.ShardOf = make([]int, r.n)
	for s, groups := range p.ShardGroups {
		for _, g := range groups {
			for _, t := range p.Groups[g] {
				p.GroupOf[t] = g
				p.ShardOf[t] = s
			}
		}
	}
	partsPatched.Add(1)
	shardsRebuilt.Add(int64(rebuilt))
	shardsRetained.Add(int64(retained))
	return p, nil
}

// shardOfGroup returns the shard a group id belongs to.
func (p *Partitioning) shardOfGroup(g int) int {
	for s, groups := range p.ShardGroups {
		for _, gg := range groups {
			if gg == g {
				return s
			}
		}
	}
	return 0
}

// regroupSubset runs the spec's grouping strategy restricted to the given
// (ascending) tuple indices, returning groups/medoids in the global index
// space.
func (r *Relation) regroupSubset(spec PartitionSpec, features [][]float64, idx []int) (groups [][]int, medoids []int, err error) {
	m := len(idx)
	if m == 0 {
		return nil, nil, nil
	}
	switch spec.Strategy {
	case PartitionKMeans:
		sub := make([][]float64, len(features))
		for d, col := range features {
			sc := make([]float64, m)
			for j, t := range idx {
				sc[j] = col[t]
			}
			sub[d] = sc
		}
		_, sg, sm := kmeansGroups(sub, m, spec.GroupSize, spec.KMeansIters, spec.Seed)
		return mapBack(sg, sm, idx)
	case PartitionHash:
		// Hash groups carry no similarity structure: chunk the subset in
		// index order into τ-sized groups.
		for start := 0; start < m; start += spec.GroupSize {
			end := start + spec.GroupSize
			if end > m {
				end = m
			}
			chunk := make([]int, end-start)
			for j := start; j < end; j++ {
				chunk[j-start] = idx[j]
			}
			groups = append(groups, chunk)
			medoids = append(medoids, chunk[0])
		}
		return groups, medoids, nil
	case PartitionRange:
		sc := make([]float64, m)
		for j, t := range idx {
			sc[j] = features[0][t]
		}
		_, sg, sm := rangeGroups(sc, m, spec.GroupSize)
		return mapBack(sg, sm, idx)
	default:
		return nil, nil, fmt.Errorf("relation: unknown partition strategy %v", spec.Strategy)
	}
}

// mapBack translates subset-local group member and medoid indices to the
// global tuple index space.
func mapBack(groups [][]int, medoids []int, idx []int) ([][]int, []int, error) {
	out := make([][]int, len(groups))
	for gi, g := range groups {
		og := make([]int, len(g))
		for j, t := range g {
			og[j] = idx[t]
		}
		out[gi] = og
	}
	om := make([]int, len(medoids))
	for i, mdx := range medoids {
		om[i] = idx[mdx]
	}
	return out, om, nil
}

// Shard returns a view of the tuples in one shard of the partitioning,
// reusing the Select machinery so substream identity (and hence correlation
// structure) is preserved. The partitioning must have been built for this
// relation at its current version: reading a shard of a partitioning whose
// version was superseded by a delta would silently mix post-delta data
// into pre-delta shard boundaries, so it fails with ErrStaleView instead
// (take a fresh Snapshot and re-partition).
func (r *Relation) Shard(p *Partitioning, shard int) (*Relation, error) {
	if v := r.Version(); p.Version != v {
		staleViews.Add(1)
		return nil, &StaleViewError{Table: r.name, ViewVersion: p.Version, BaseVersion: v}
	}
	if len(p.ShardOf) != r.n {
		return nil, fmt.Errorf("relation: partitioning covers %d tuples, relation has %d", len(p.ShardOf), r.n)
	}
	if shard < 0 || shard >= p.NumShards() {
		return nil, fmt.Errorf("relation: shard %d out of range [0, %d)", shard, p.NumShards())
	}
	return r.Select(func(t int) bool { return p.ShardOf[t] == shard }), nil
}

// groupSet is the cached clustering level of a partitioning, shared by
// every shard count over the same grouping spec.
type groupSet struct {
	version uint64
	groupOf []int
	groups  [][]int
	medoids []int
}

// buildGroups runs the clustering strategy — the expensive,
// shard-count-independent half of a partitioning. It only reads the
// relation's columns (immutable once added), so it is safe to run without
// the cache lock.
func (r *Relation) buildGroups(spec PartitionSpec, version uint64) (*groupSet, error) {
	gs := &groupSet{version: version}
	if r.n == 0 {
		return gs, nil
	}
	var err error
	switch spec.Strategy {
	case PartitionKMeans:
		var features [][]float64
		features, err = r.featureCols(spec.Features)
		if err == nil {
			gs.groupOf, gs.groups, gs.medoids = kmeansGroups(features, r.n, spec.GroupSize, spec.KMeansIters, spec.Seed)
		}
	case PartitionHash:
		gs.groupOf, gs.groups, gs.medoids = hashGroups(r.n, spec.GroupSize, spec.Seed)
	case PartitionRange:
		var features [][]float64
		features, err = r.featureCols(spec.Features)
		if err == nil {
			gs.groupOf, gs.groups, gs.medoids = rangeGroups(features[0], r.n, spec.GroupSize)
		}
	default:
		err = fmt.Errorf("relation: unknown partition strategy %v", spec.Strategy)
	}
	if err != nil {
		return nil, err
	}
	return gs, nil
}

// assemblePartitioning splits the group order into near-equal contiguous
// shard runs around a (possibly shared) group set.
func assemblePartitioning(spec PartitionSpec, gs *groupSet, n int) *Partitioning {
	p := &Partitioning{Spec: spec, Version: gs.version}
	p.GroupOf, p.Groups, p.Medoids = gs.groupOf, gs.groups, gs.medoids

	shards := spec.Shards
	if g := len(p.Groups); shards > g {
		shards = g
	}
	p.ShardGroups = make([][]int, shards)
	for s := 0; s < shards; s++ {
		lo := s * len(p.Groups) / shards
		hi := (s + 1) * len(p.Groups) / shards
		for g := lo; g < hi; g++ {
			p.ShardGroups[s] = append(p.ShardGroups[s], g)
		}
	}
	p.ShardOf = make([]int, n)
	for s, groups := range p.ShardGroups {
		for _, g := range groups {
			for _, t := range p.Groups[g] {
				p.ShardOf[t] = s
			}
		}
	}
	return p
}

func (r *Relation) featureCols(names []string) ([][]float64, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("relation: partition spec names no feature columns")
	}
	out := make([][]float64, len(names))
	for i, name := range names {
		col, err := r.Means(name) // det columns pass through, stoch = means
		if err != nil {
			return nil, err
		}
		out[i] = col
	}
	return out, nil
}

// kmeansGroups clusters tuples on the feature columns using seeded k-means
// with k = ⌈N/τ⌉ and picks the tuple nearest each centroid as the group
// representative. Oversized clusters (k-means may collapse clusters when
// many tuples share identical features) are split into τ-sized chunks;
// members within a cluster are interchangeable for sketching purposes.
func kmeansGroups(features [][]float64, n, tau, iters int, seed uint64) (groupOf []int, groups [][]int, medoids []int) {
	k := (n + tau - 1) / tau
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	dims := len(features)
	// Normalize features to [0, 1] so distances are scale-free.
	norm := make([][]float64, dims)
	for d, col := range features {
		lo, hi := col[0], col[0]
		for _, v := range col {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		span := hi - lo
		if span < 1e-12 {
			span = 1
		}
		nc := make([]float64, n)
		for i, v := range col {
			nc[i] = (v - lo) / span
		}
		norm[d] = nc
	}
	dist2 := func(i int, centroid []float64) float64 {
		s := 0.0
		for d := 0; d < dims; d++ {
			diff := norm[d][i] - centroid[d]
			s += diff * diff
		}
		return s
	}
	// Seeded distinct random initialization.
	st := rng.NewStream(rng.Mix(seed, 0x5ce7c4))
	centroids := make([][]float64, k)
	used := map[int]bool{}
	for c := 0; c < k; c++ {
		var pick int
		for {
			pick = st.IntN(n)
			if !used[pick] {
				used[pick] = true
				break
			}
		}
		centroids[c] = make([]float64, dims)
		for d := 0; d < dims; d++ {
			centroids[c][d] = norm[d][pick]
		}
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := dist2(i, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for d := 0; d < dims; d++ {
				centroids[c][d] += norm[d][i]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				pick := st.IntN(n)
				for d := 0; d < dims; d++ {
					centroids[c][d] = norm[d][pick]
				}
				continue
			}
			for d := 0; d < dims; d++ {
				centroids[c][d] /= float64(counts[c])
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	groupOf = make([]int, n)
	members := map[int][]int{}
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	for c := 0; c < k; c++ {
		cluster := members[c]
		if len(cluster) == 0 {
			continue
		}
		for start := 0; start < len(cluster); start += tau {
			end := start + tau
			if end > len(cluster) {
				end = len(cluster)
			}
			chunk := cluster[start:end]
			gid := len(groups)
			groups = append(groups, chunk)
			// Medoid: chunk member closest to the centroid.
			best, bestD := chunk[0], math.Inf(1)
			for _, i := range chunk {
				if d := dist2(i, centroids[c]); d < bestD {
					best, bestD = i, d
				}
			}
			medoids = append(medoids, best)
			for _, i := range chunk {
				groupOf[i] = gid
			}
		}
	}
	return groupOf, groups, medoids
}

// hashGroups buckets tuples by a seeded hash of the tuple index into
// ⌈N/τ⌉ buckets, then splits oversized buckets into τ-sized chunks. The
// first member of each chunk stands as its representative (hash groups
// carry no similarity structure, so any member is as representative as any
// other).
func hashGroups(n, tau int, seed uint64) (groupOf []int, groups [][]int, medoids []int) {
	k := (n + tau - 1) / tau
	if k < 1 {
		k = 1
	}
	buckets := make([][]int, k)
	for t := 0; t < n; t++ {
		b := int(rng.Mix(seed, 0x9a54c1, uint64(t)) % uint64(k))
		buckets[b] = append(buckets[b], t)
	}
	groupOf = make([]int, n)
	for _, bucket := range buckets {
		for start := 0; start < len(bucket); start += tau {
			end := start + tau
			if end > len(bucket) {
				end = len(bucket)
			}
			chunk := bucket[start:end]
			gid := len(groups)
			groups = append(groups, chunk)
			medoids = append(medoids, chunk[0])
			for _, t := range chunk {
				groupOf[t] = gid
			}
		}
	}
	return groupOf, groups, medoids
}

// rangeGroups sorts tuples by the feature column (ties broken by tuple
// index, so the order is total and deterministic) and cuts the order into
// consecutive τ-sized groups. The middle member of each run stands as its
// representative.
func rangeGroups(col []float64, n, tau int) (groupOf []int, groups [][]int, medoids []int) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return col[order[a]] < col[order[b]] })
	groupOf = make([]int, n)
	for start := 0; start < n; start += tau {
		end := start + tau
		if end > n {
			end = n
		}
		chunk := append([]int(nil), order[start:end]...)
		gid := len(groups)
		groups = append(groups, chunk)
		medoids = append(medoids, chunk[len(chunk)/2])
		for _, t := range chunk {
			groupOf[t] = gid
		}
	}
	return groupOf, groups, medoids
}
