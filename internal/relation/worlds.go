package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"spq/internal/rng"
)

// WriteScenarioCSV writes one realized scenario ("possible world" in the
// Monte Carlo model) as CSV: all deterministic columns followed by the
// realized values of every stochastic attribute, with a header row. The
// same (src, scenario) coordinates always produce the same world.
func (r *Relation) WriteScenarioCSV(w io.Writer, src rng.Source, scenario int) error {
	cw := csv.NewWriter(w)
	header := append(r.DetNames(), r.StochNames()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	stochCols := make([][]float64, len(r.stochs))
	for k := range r.stochs {
		col := make([]float64, r.n)
		if err := r.Realize(src, r.stochs[k].name, scenario, col); err != nil {
			return err
		}
		stochCols[k] = col
	}
	record := make([]string, len(header))
	for t := 0; t < r.n; t++ {
		for i := range r.detCols {
			record[i] = strconv.FormatFloat(r.detCols[i][t], 'g', -1, 64)
		}
		for k := range stochCols {
			record[len(r.detCols)+k] = strconv.FormatFloat(stochCols[k][t], 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SampleTuple returns realizations of one tuple's stochastic attribute
// across the scenarios [0, m) — a quick empirical look at a tuple's
// uncertainty, as a monitoring/debugging aid.
func (r *Relation) SampleTuple(src rng.Source, attr string, tuple, m int) ([]float64, error) {
	if tuple < 0 || tuple >= r.n {
		return nil, fmt.Errorf("relation: tuple %d out of range [0, %d)", tuple, r.n)
	}
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		v, err := r.Value(src, attr, tuple, j)
		if err != nil {
			return nil, err
		}
		out[j] = v
	}
	return out, nil
}
