package relation

import (
	"errors"
	"testing"

	"spq/internal/dist"
	"spq/internal/rng"
)

// deltaRelation builds a mutable base relation with one deterministic
// column, one broadcast stochastic attribute, and precomputed means.
func deltaRelation(t *testing.T, n int) *Relation {
	t.Helper()
	col := make([]float64, n)
	for i := range col {
		col[i] = float64(i)
	}
	rel := New("r", n)
	if err := rel.AddDet("price", col); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &IndependentVG{AttrID: 1, Dists: []dist.Dist{dist.Normal{Mu: 1, Sigma: 0.1}}}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(7), 10)
	return rel
}

func TestApplyDeltaPatchAndSnapshotIsolation(t *testing.T) {
	rel := deltaRelation(t, 10)
	v0 := rel.Version()
	snap := rel.Snapshot()
	if snap2 := rel.Snapshot(); snap2 != snap {
		t.Fatal("Snapshot not memoized between mutations")
	}

	cs, err := rel.ApplyDelta(&Delta{Set: map[string]map[int]float64{"price": {3: 99, 7: 88}}})
	if err != nil {
		t.Fatal(err)
	}
	if cs.From != v0 || cs.To != rel.Version() || cs.To != v0+1 {
		t.Fatalf("change set versions %d→%d, relation at %d (was %d)", cs.From, cs.To, rel.Version(), v0)
	}
	if len(cs.Cols) != 1 || cs.Cols[0] != "price" {
		t.Fatalf("cols = %v", cs.Cols)
	}
	if len(cs.Tuples) != 2 || cs.Tuples[0] != 3 || cs.Tuples[1] != 7 {
		t.Fatalf("tuples = %v", cs.Tuples)
	}
	if cs.MembershipChanged() {
		t.Fatal("pure patch must not report membership change")
	}

	// The base sees the new values; the pre-delta snapshot still reads the
	// old ones (copy-on-write).
	if v, _ := rel.DetValue("price", 3); v != 99 {
		t.Fatalf("base price[3] = %v, want 99", v)
	}
	if v, _ := snap.DetValue("price", 3); v != 3 {
		t.Fatalf("snapshot price[3] = %v, want 3 (pre-delta)", v)
	}
	if snap.Version() != v0 {
		t.Fatalf("snapshot version moved to %d", snap.Version())
	}
	if !snap.Stale() {
		t.Fatal("snapshot should report Stale after the delta")
	}
	if rel.Snapshot() == snap {
		t.Fatal("post-delta Snapshot returned the stale snapshot")
	}

	// Stochastic realizations of the snapshot are unchanged: substream
	// identity survives.
	src := rng.NewSource(42)
	a := make([]float64, 10)
	b := make([]float64, 10)
	if err := snap.Realize(src, "gain", 0, a); err != nil {
		t.Fatal(err)
	}
	if err := rel.Snapshot().Realize(src, "gain", 0, b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gain realization diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestApplyDeltaValidation(t *testing.T) {
	rel := deltaRelation(t, 4)
	if _, err := rel.ApplyDelta(&Delta{Set: map[string]map[int]float64{"nope": {0: 1}}}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := rel.ApplyDelta(&Delta{Set: map[string]map[int]float64{"price": {9: 1}}}); err == nil {
		t.Fatal("out-of-range tuple accepted")
	}
	if _, err := rel.ApplyDelta(&Delta{Delete: []int{1, 1}}); err == nil {
		t.Fatal("duplicate delete accepted")
	}
	if _, err := rel.ApplyDelta(&Delta{Append: []map[string]float64{{"wrong": 1}}}); err == nil {
		t.Fatal("append row missing a column accepted")
	}
	if _, err := rel.Snapshot().ApplyDelta(&Delta{}); err == nil {
		t.Fatal("ApplyDelta on a snapshot accepted")
	}
	// A delta that changes nothing must not bump the version.
	v := rel.Version()
	cs, err := rel.ApplyDelta(&Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Empty() || rel.Version() != v {
		t.Fatalf("empty delta bumped version %d→%d", v, rel.Version())
	}
}

func TestApplyDeltaDeleteAppend(t *testing.T) {
	rel := deltaRelation(t, 6)
	snap := rel.Snapshot()

	// Record pre-delta realizations of the survivors.
	src := rng.NewSource(9)
	pre := make([]float64, 6)
	if err := snap.Realize(src, "gain", 3, pre); err != nil {
		t.Fatal(err)
	}

	cs, err := rel.ApplyDelta(&Delta{
		Delete: []int{1, 4},
		Append: []map[string]float64{{"price": 100}, {"price": 101}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Deleted || cs.Appended != 2 || !cs.MembershipChanged() {
		t.Fatalf("change set = %+v", cs)
	}
	if rel.N() != 6 {
		t.Fatalf("n = %d, want 6 (6 - 2 + 2)", rel.N())
	}
	// Survivors keep original indices: 0,2,3,5 then two appended tuples.
	wantOrig := []int{0, 2, 3, 5, 6, 7}
	for i, w := range wantOrig {
		if rel.OrigIndex(i) != w {
			t.Fatalf("OrigIndex(%d) = %d, want %d", i, rel.OrigIndex(i), w)
		}
	}
	if v, _ := rel.DetValue("price", 4); v != 100 {
		t.Fatalf("appended price = %v, want 100", v)
	}
	// Survivor substream identity: tuple 2 (was 3) realizes identically.
	post := make([]float64, 6)
	if err := rel.Snapshot().Realize(src, "gain", 3, post); err != nil {
		t.Fatal(err)
	}
	if post[2] != pre[3] || post[1] != pre[2] {
		t.Fatalf("survivor realization changed: %v vs pre %v", post, pre)
	}
	// Means extended for the appended tuples via the closed form.
	m, err := rel.Means("gain")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 6 || m[4] != 1 || m[5] != 1 {
		t.Fatalf("means = %v", m)
	}
	// The pre-delta snapshot is untouched.
	if snap.N() != 6 || snap.OrigIndex(4) != 4 {
		t.Fatal("snapshot membership changed")
	}
}

func TestChangesMergesAndTrims(t *testing.T) {
	rel := deltaRelation(t, 8)
	v0 := rel.Version()
	mustDelta := func(d *Delta) {
		t.Helper()
		if _, err := rel.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	mustDelta(&Delta{Set: map[string]map[int]float64{"price": {1: 10}}})
	mustDelta(&Delta{Set: map[string]map[int]float64{"price": {2: 20}}})

	cs, ok := rel.Changes(v0)
	if !ok {
		t.Fatal("Changes unavailable")
	}
	if cs.From != v0 || cs.To != rel.Version() {
		t.Fatalf("merged covers %d→%d", cs.From, cs.To)
	}
	if len(cs.Tuples) != 2 || cs.Tuples[0] != 1 || cs.Tuples[1] != 2 {
		t.Fatalf("merged tuples = %v", cs.Tuples)
	}
	// Same-version query returns an empty set.
	cs, ok = rel.Changes(rel.Version())
	if !ok || !cs.Empty() {
		t.Fatalf("same-version Changes = %+v, %v", cs, ok)
	}
	// A wholesale mutation severs the history.
	if err := rel.SetMeans("gain", make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	if _, ok := rel.Changes(v0); ok {
		t.Fatal("Changes available across a wholesale mutation")
	}
	// And a trimmed log severs older versions.
	SetDeltaLogCap(2)
	defer SetDeltaLogCap(64)
	vw := rel.Version()
	mustDelta(&Delta{Set: map[string]map[int]float64{"price": {0: 1}}})
	mustDelta(&Delta{Set: map[string]map[int]float64{"price": {0: 2}}})
	mustDelta(&Delta{Set: map[string]map[int]float64{"price": {0: 3}}})
	if _, ok := rel.Changes(vw); ok {
		t.Fatal("Changes available past the trimmed log")
	}
	if _, ok := rel.Changes(rel.Version() - 2); !ok {
		t.Fatal("Changes unavailable within the log window")
	}
}

func TestShardStaleViewError(t *testing.T) {
	rel := partRelation(t, 128)
	p, err := rel.Partition(PartitionSpec{Strategy: PartitionRange, Features: []string{"v"}, GroupSize: 16, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Shard(p, 0); err != nil {
		t.Fatalf("fresh shard read failed: %v", err)
	}
	snap := rel.Snapshot()
	if _, err := rel.ApplyDelta(&Delta{Set: map[string]map[int]float64{"v": {0: 5}}}); err != nil {
		t.Fatal(err)
	}
	// The base moved: reading the old partitioning through it must fail.
	_, err = rel.Shard(p, 0)
	if err == nil {
		t.Fatal("stale shard read accepted")
	}
	if !errors.Is(err, ErrStaleView) {
		t.Fatalf("error %v does not match ErrStaleView", err)
	}
	var sve *StaleViewError
	if !errors.As(err, &sve) || sve.ViewVersion >= sve.BaseVersion {
		t.Fatalf("structured error = %+v", err)
	}
	// The pre-delta snapshot still serves the old partitioning.
	if _, err := snap.Shard(p, 0); err != nil {
		t.Fatalf("snapshot shard read failed: %v", err)
	}
}

func TestPartitionDeltaRetainAndPatch(t *testing.T) {
	n := 512
	col := make([]float64, n)
	other := make([]float64, n)
	for i := range col {
		col[i] = float64(i%16) + 20*float64(i/(n/4)) // 4 well-separated bands
		other[i] = float64(i)
	}
	rel := New("r", n)
	if err := rel.AddDet("v", col); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddDet("w", other); err != nil {
		t.Fatal(err)
	}
	spec := PartitionSpec{Strategy: PartitionKMeans, Features: []string{"v"}, GroupSize: 32, Shards: 4}

	s0 := rel.Snapshot()
	p0, err := s0.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Delta touching a non-feature column: the partitioning is retained
	// (rebased), not rebuilt.
	before := DeltaStats()
	if _, err := rel.ApplyDelta(&Delta{Set: map[string]map[int]float64{"w": {5: -1}}}); err != nil {
		t.Fatal(err)
	}
	s1 := rel.Snapshot()
	p1, err := s1.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	after := DeltaStats()
	if after.PartitionsRetained != before.PartitionsRetained+1 {
		t.Fatalf("expected a retained partitioning: %+v -> %+v", before, after)
	}
	if p1.Version != s1.Version() {
		t.Fatalf("rebased partitioning at version %d, want %d", p1.Version, s1.Version())
	}
	for i := range p0.GroupOf {
		if p0.GroupOf[i] != p1.GroupOf[i] {
			t.Fatal("retained partitioning changed group assignment")
		}
	}

	// Delta touching the feature column at a handful of tuples: only the
	// affected shards rebuild.
	k := p1.ShardOf[3] // all touched tuples in one shard
	touched := map[int]float64{}
	for t2 := 0; t2 < n && len(touched) < 3; t2++ {
		if p1.ShardOf[t2] == k {
			touched[t2] = col[t2] + 0.25
		}
	}
	before = DeltaStats()
	if _, err := rel.ApplyDelta(&Delta{Set: map[string]map[int]float64{"v": touched}}); err != nil {
		t.Fatal(err)
	}
	s2 := rel.Snapshot()
	p2, err := s2.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	after = DeltaStats()
	if after.PartitionsPatched != before.PartitionsPatched+1 {
		t.Fatalf("expected a patched partitioning: %+v -> %+v", before, after)
	}
	if got := after.ShardsRebuilt - before.ShardsRebuilt; got != 1 {
		t.Fatalf("rebuilt %d shards, want exactly the 1 affected", got)
	}
	if got := after.ShardsRetained - before.ShardsRetained; got != 3 {
		t.Fatalf("retained %d shards, want 3", got)
	}
	if p2.NumShards() != 4 {
		t.Fatalf("patched partitioning has %d shards", p2.NumShards())
	}
	// Unaffected shards keep their exact groups.
	for s := 0; s < 4; s++ {
		if s == k {
			continue
		}
		a, b := p1.ShardGroups[s], p2.ShardGroups[s]
		if len(a) != len(b) {
			t.Fatalf("unaffected shard %d group count changed", s)
		}
		for i := range a {
			ga, gb := p1.Groups[a[i]], p2.Groups[b[i]]
			if len(ga) != len(gb) {
				t.Fatalf("unaffected shard %d group %d size changed", s, i)
			}
			for j := range ga {
				if ga[j] != gb[j] {
					t.Fatalf("unaffected shard %d group %d member changed", s, i)
				}
			}
		}
	}
	// Every tuple is still covered exactly once.
	checkCover(t, p2, n)

	// Appends route to a deterministic shard and only that shard rebuilds.
	before = DeltaStats()
	if _, err := rel.ApplyDelta(&Delta{Append: []map[string]float64{{"v": 0.5, "w": 999}}}); err != nil {
		t.Fatal(err)
	}
	s3 := rel.Snapshot()
	p3, err := s3.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	after = DeltaStats()
	if after.PartitionsPatched != before.PartitionsPatched+1 {
		t.Fatalf("expected a patched partitioning on append: %+v -> %+v", before, after)
	}
	if got := after.ShardsRebuilt - before.ShardsRebuilt; got != 1 {
		t.Fatalf("append rebuilt %d shards, want 1", got)
	}
	checkCover(t, p3, n+1)

	// Deletes force a full rebuild (the index space shifted).
	before = DeltaStats()
	if _, err := rel.ApplyDelta(&Delta{Delete: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Snapshot().Partition(spec); err != nil {
		t.Fatal(err)
	}
	after = DeltaStats()
	if after.PartitionsRebuilt != before.PartitionsRebuilt+1 {
		t.Fatalf("expected a full rebuild after delete: %+v -> %+v", before, after)
	}
}
