// Delta-scoped mutation of relations. A Delta describes a batch of tuple
// upserts/deletes, deterministic-column patches, and VG-parameter updates;
// ApplyDelta installs it copy-on-write so that snapshots taken before the
// delta keep reading the pre-delta state (columns are replaced, never
// written in place). Every apply produces a ChangeSet — the first-class
// invalidation currency of the engine: downstream caches ask
// Changes(sinceVersion) and retain, patch, or rebuild by footprint instead
// of discarding wholesale on any version bump.
package relation

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Delta is a batch mutation of a base relation. Index spaces: Set and SetVG
// address tuples in the relation's current (pre-delete) index space, Delete
// likewise; Append rows land after deletes, at the end of the compacted
// relation. Within one ApplyDelta the order of application is
// patches → VG updates → deletes → appends.
type Delta struct {
	// Set patches deterministic columns: Set[col][tuple] = new value.
	Set map[string]map[int]float64
	// SetVG replaces the VG function (and cached means) of stochastic
	// attributes — e.g. re-fitted distribution parameters. The whole
	// attribute column is considered changed.
	SetVG map[string]VGUpdate
	// Delete removes the listed tuple indices. Surviving tuples are
	// compacted but keep their substream identity (OrigIndex keeps mapping
	// to the original base index), so scenario realizations of survivors
	// are unchanged.
	Delete []int
	// Append adds new tuples at the end. Each row must supply a value for
	// every deterministic column; stochastic attributes must be
	// broadcastable (a single-distribution IndependentVG) so the new
	// tuples draw from fresh substreams of the same distribution.
	Append []map[string]float64
}

// VGUpdate carries a replacement VG function and its per-tuple mean column
// (the means cache cannot be re-estimated without a sampling budget, so the
// caller supplies it; nil keeps the previous means, which is almost always
// wrong unless the update preserves them).
type VGUpdate struct {
	VG    VGFunc
	Means []float64
}

// ChangeSet records what one or more deltas changed between two versions.
// It is the unit of delta-scoped invalidation: a consumer holding state
// built at version From decides by footprint whether to retain, patch, or
// rebuild for version To.
type ChangeSet struct {
	// From and To bracket the versions: the set covers (From, To].
	From, To uint64
	// Cols lists deterministic columns with patched cells (sorted).
	Cols []string
	// Attrs lists stochastic attributes whose VG was replaced (sorted);
	// every tuple of such an attribute must be treated as changed.
	Attrs []string
	// Tuples lists the tuple indices with patched cells (sorted, in the
	// pre-delete index space of version From). Meaningless once Deleted.
	Tuples []int
	// Appended counts tuples added at the end.
	Appended int
	// Deleted reports whether any tuples were removed (the index space
	// shifted; per-tuple patching is no longer sound).
	Deleted bool
	// Wholesale reports a schema or full-relation mutation: nothing can be
	// retained.
	Wholesale bool
}

// MembershipChanged reports whether the tuple set (count or order) changed.
func (cs *ChangeSet) MembershipChanged() bool {
	return cs.Appended > 0 || cs.Deleted || cs.Wholesale
}

// Touches reports whether the change set's column footprint intersects the
// given attribute names.
func (cs *ChangeSet) Touches(attrs []string) bool {
	for _, a := range attrs {
		for _, c := range cs.Cols {
			if a == c {
				return true
			}
		}
		for _, c := range cs.Attrs {
			if a == c {
				return true
			}
		}
	}
	return false
}

// Empty reports a change set with no recorded changes.
func (cs *ChangeSet) Empty() bool {
	return !cs.Wholesale && !cs.Deleted && cs.Appended == 0 &&
		len(cs.Cols) == 0 && len(cs.Attrs) == 0
}

// ErrStaleView is the sentinel matched (via errors.Is) by StaleViewError:
// a partitioning or view built against a relation version that has since
// been superseded by a delta.
var ErrStaleView = errors.New("relation: stale view")

// StaleViewError reports an attempt to read through a view or partitioning
// whose base version was superseded by a mutation. Callers should re-derive
// from a fresh Snapshot.
type StaleViewError struct {
	Table string
	// ViewVersion is the version the view/partitioning was built against;
	// BaseVersion is the relation's current version.
	ViewVersion, BaseVersion uint64
}

func (e *StaleViewError) Error() string {
	return fmt.Sprintf("relation: stale view of %q: built at version %d, relation now at %d",
		e.Table, e.ViewVersion, e.BaseVersion)
}

func (e *StaleViewError) Unwrap() error { return ErrStaleView }

// Package-level delta counters, exported through DeltaStats for the
// engine's /stats and /metrics surfaces.
var (
	deltasApplied  atomic.Int64
	deltaCells     atomic.Int64
	deltaAppends   atomic.Int64
	deltaDeletes   atomic.Int64
	partsRetained  atomic.Int64
	partsPatched   atomic.Int64
	partsRebuilt   atomic.Int64
	shardsRebuilt  atomic.Int64
	shardsRetained atomic.Int64
	staleViews     atomic.Int64
)

// DeltaStatsSnapshot reports the cumulative delta-maintenance counters:
// how many deltas were applied and, on the consumption side, how much
// partitioning work was retained/patched versus rebuilt.
type DeltaStatsSnapshot struct {
	DeltasApplied  int64
	CellsPatched   int64
	TuplesAppended int64
	TuplesDeleted  int64
	// PartitionsRetained counts cached partitionings rebased to a new
	// version untouched (delta footprint disjoint from the features);
	// PartitionsPatched counts those with only affected shards
	// re-clustered; PartitionsRebuilt counts full builds.
	PartitionsRetained int64
	PartitionsPatched  int64
	PartitionsRebuilt  int64
	// ShardsRebuilt/ShardsRetained split patched partitionings by shard.
	ShardsRebuilt  int64
	ShardsRetained int64
	// StaleViews counts reads rejected with ErrStaleView.
	StaleViews int64
}

// DeltaStats returns the cumulative delta counters.
func DeltaStats() DeltaStatsSnapshot {
	return DeltaStatsSnapshot{
		DeltasApplied:      deltasApplied.Load(),
		CellsPatched:       deltaCells.Load(),
		TuplesAppended:     deltaAppends.Load(),
		TuplesDeleted:      deltaDeletes.Load(),
		PartitionsRetained: partsRetained.Load(),
		PartitionsPatched:  partsPatched.Load(),
		PartitionsRebuilt:  partsRebuilt.Load(),
		ShardsRebuilt:      shardsRebuilt.Load(),
		ShardsRetained:     shardsRetained.Load(),
		StaleViews:         staleViews.Load(),
	}
}

// deltaLogCap bounds the per-relation change-set history; consumers whose
// base version fell off the log rebuild wholesale (Changes returns false).
var deltaLogCap atomic.Int64

func init() { deltaLogCap.Store(64) }

// SetDeltaLogCap sets the number of change sets each relation retains for
// Changes (minimum 1). It affects subsequently applied deltas.
func SetDeltaLogCap(n int) {
	if n < 1 {
		n = 1
	}
	deltaLogCap.Store(int64(n))
}

// Snapshot returns an immutable view of the relation at its current
// version. Mutators replace column containers copy-on-write rather than
// writing in place, so the snapshot is O(columns) to take and keeps reading
// the pre-delta state forever — including VG substream identity, so
// scenario realizations against a snapshot are bit-reproducible. Snapshots
// are memoized: every caller between two mutations shares one snapshot
// object (and thus one partitioning cache, which Partition delegates to
// the base relation). Snapshots of snapshots, and of Select views (already
// effectively immutable), return the receiver.
func (r *Relation) Snapshot() *Relation {
	if r.base != nil || r.view {
		return r
	}
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	if r.snap != nil {
		return r.snap
	}
	s := &Relation{
		name:     r.name,
		n:        r.n,
		detNames: append([]string(nil), r.detNames...),
		detSrcs:  append([]ColumnSource(nil), r.detSrcs...),
		detIdx:   cloneMap(r.detIdx),
		stochs:   append([]stochAttr(nil), r.stochs...),
		stochIdx: cloneMap(r.stochIdx),
		means:    cloneMap(r.means),
		origIdx:  r.origIdx,
		base:     r,
	}
	// detCols is written by lazy-column promotion (Det) under lazyMu;
	// copy the outer slice under the same lock so a concurrent promotion
	// cannot race the copy. The snapshot re-promotes independently.
	r.lazyMu.Lock()
	s.detCols = append([][]float64(nil), r.detCols...)
	r.lazyMu.Unlock()
	s.version.Store(r.version.Load())
	r.snap = s
	return s
}

func cloneMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Base returns the mutable relation a snapshot shadows, or the receiver for
// base relations and Select views.
func (r *Relation) Base() *Relation {
	if r.base != nil {
		return r.base
	}
	return r
}

// Stale reports whether the receiver is a snapshot whose base relation has
// since moved to a newer version.
func (r *Relation) Stale() bool {
	return r.base != nil && r.base.Version() != r.Version()
}

// Changes returns the merged change set covering (since, current]. The
// second result is false when the history is unavailable — the version
// predates a wholesale mutation, or the bounded delta log was trimmed —
// in which case the caller must rebuild. Called on a snapshot it consults
// the base relation's log.
func (r *Relation) Changes(since uint64) (*ChangeSet, bool) {
	host := r.Base()
	host.mutMu.Lock()
	defer host.mutMu.Unlock()
	cur := host.version.Load()
	if since > cur {
		return nil, false
	}
	if since == cur {
		return &ChangeSet{From: since, To: cur}, true
	}
	if since < host.wholesaleEpoch {
		return nil, false
	}
	merged := &ChangeSet{From: since, To: cur}
	covered := since
	cols := map[string]bool{}
	attrs := map[string]bool{}
	tuples := map[int]bool{}
	for _, e := range host.deltaLog {
		if e.To <= since {
			continue
		}
		if e.From != covered {
			return nil, false // a gap: the log was trimmed past `since`
		}
		for _, c := range e.Cols {
			cols[c] = true
		}
		for _, a := range e.Attrs {
			attrs[a] = true
		}
		if !merged.Deleted {
			// Tuple indices are only meaningful while the index space is
			// stable; after a delete the per-tuple list is moot (Deleted
			// forces consumers to rebuild anyway).
			for _, t := range e.Tuples {
				tuples[t] = true
			}
		}
		merged.Appended += e.Appended
		merged.Deleted = merged.Deleted || e.Deleted
		covered = e.To
	}
	if covered != cur {
		return nil, false
	}
	merged.Cols = sortedKeys(cols)
	merged.Attrs = sortedKeys(attrs)
	merged.Tuples = sortedInts(tuples)
	return merged, true
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedInts(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ApplyDelta validates and installs a delta, returning the resulting
// ChangeSet. All mutation is copy-on-write: previously taken snapshots and
// Select views keep reading the pre-delta data. ApplyDelta is safe to call
// concurrently with readers and with itself; it must be called on a base
// relation (not a snapshot or view).
func (r *Relation) ApplyDelta(d *Delta) (*ChangeSet, error) {
	if r.base != nil || r.view {
		return nil, errors.New("relation: ApplyDelta on an immutable snapshot or view")
	}
	r.mutMu.Lock()
	defer r.mutMu.Unlock()

	// --- validate everything before touching any state ---
	touched := map[int]bool{}
	cells := 0
	for col, patch := range d.Set {
		i, ok := r.detIdx[col]
		if !ok {
			return nil, fmt.Errorf("relation: delta patches unknown deterministic column %q", col)
		}
		_ = i
		for t := range patch {
			if t < 0 || t >= r.n {
				return nil, fmt.Errorf("relation: delta patch of %q at tuple %d out of range [0,%d)", col, t, r.n)
			}
			touched[t] = true
			cells++
		}
	}
	for attr, up := range d.SetVG {
		if _, ok := r.stochIdx[attr]; !ok {
			return nil, fmt.Errorf("relation: delta replaces unknown stochastic attribute %q", attr)
		}
		if up.VG == nil {
			return nil, fmt.Errorf("relation: delta replaces %q with a nil VG", attr)
		}
		if up.Means != nil && len(up.Means) != r.n {
			return nil, fmt.Errorf("relation: delta means for %q has %d values, want %d", attr, len(up.Means), r.n)
		}
	}
	deletes := append([]int(nil), d.Delete...)
	sort.Ints(deletes)
	for i, t := range deletes {
		if t < 0 || t >= r.n {
			return nil, fmt.Errorf("relation: delta deletes tuple %d out of range [0,%d)", t, r.n)
		}
		if i > 0 && deletes[i-1] == t {
			return nil, fmt.Errorf("relation: delta deletes tuple %d twice", t)
		}
	}
	if len(d.Append) > 0 {
		for ri, row := range d.Append {
			if len(row) != len(r.detNames) {
				return nil, fmt.Errorf("relation: delta append row %d has %d values, want one per deterministic column (%d)", ri, len(row), len(r.detNames))
			}
			for _, name := range r.detNames {
				if _, ok := row[name]; !ok {
					return nil, fmt.Errorf("relation: delta append row %d misses column %q", ri, name)
				}
			}
		}
		for _, sa := range r.stochs {
			if _, ok := d.SetVG[sa.name]; ok {
				continue // the replacement VG is checked below against the new size
			}
			if !appendable(sa.vg) {
				return nil, fmt.Errorf("relation: stochastic attribute %q cannot be extended by append (needs a broadcast IndependentVG)", sa.name)
			}
		}
	}

	// --- apply copy-on-write: build replacement containers ---
	newCols := make([][]float64, len(r.detCols))
	r.lazyMu.Lock()
	copy(newCols, r.detCols)
	r.lazyMu.Unlock()
	newSrcs := append([]ColumnSource(nil), r.detSrcs...)
	newStochs := append([]stochAttr(nil), r.stochs...)
	newMeans := cloneMap(r.means)
	newOrig := r.origIdx
	newN := r.n

	cs := &ChangeSet{From: r.version.Load()}

	// 1. Deterministic cell patches.
	for col, patch := range d.Set {
		i := r.detIdx[col]
		old, err := r.residentCol(i, newCols[i])
		if err != nil {
			return nil, fmt.Errorf("relation: delta patching %q: %w", col, err)
		}
		nc := append([]float64(nil), old...)
		for t, v := range patch {
			nc[t] = v
		}
		newCols[i] = nc
		newSrcs[i] = nil // the patched column is resident from now on
		cs.Cols = append(cs.Cols, col)
	}
	sort.Strings(cs.Cols)
	cs.Tuples = sortedInts(touched)

	// 2. VG replacements.
	for attr, up := range d.SetVG {
		i := r.stochIdx[attr]
		newStochs[i] = stochAttr{name: attr, vg: up.VG}
		if up.Means != nil {
			newMeans[attr] = append([]float64(nil), up.Means...)
		}
		cs.Attrs = append(cs.Attrs, attr)
	}
	sort.Strings(cs.Attrs)

	// 3. Deletes: compact every container, composing OrigIndex so the
	// survivors keep their substream identity.
	if len(deletes) > 0 {
		drop := make(map[int]bool, len(deletes))
		for _, t := range deletes {
			drop[t] = true
		}
		surviving := make([]int, 0, newN-len(deletes))
		for t := 0; t < newN; t++ {
			if !drop[t] {
				surviving = append(surviving, t)
			}
		}
		if r.nextOrig == 0 {
			// First membership mutation: record the original-index
			// high-water mark before the index space shifts.
			r.nextOrig = r.baseSize()
		}
		for i := range newCols {
			old, err := r.residentCol(i, newCols[i])
			if err != nil {
				return nil, fmt.Errorf("relation: delta deleting from %q: %w", r.detNames[i], err)
			}
			nc := make([]float64, len(surviving))
			for k, t := range surviving {
				nc[k] = old[t]
			}
			newCols[i] = nc
			newSrcs[i] = nil
		}
		orig := make([]int, len(surviving))
		for k, t := range surviving {
			if newOrig != nil {
				orig[k] = newOrig[t]
			} else {
				orig[k] = t
			}
		}
		newOrig = orig
		for i, sa := range newStochs {
			newStochs[i] = stochAttr{name: sa.name, vg: rewrapVG(sa.vg, newOrig)}
		}
		for attr, m := range newMeans {
			nc := make([]float64, len(surviving))
			for k, t := range surviving {
				nc[k] = m[t]
			}
			newMeans[attr] = nc
		}
		newN = len(surviving)
		cs.Deleted = true
	}

	// 4. Appends.
	if a := len(d.Append); a > 0 {
		for i := range newCols {
			old, err := r.residentCol(i, newCols[i])
			if err != nil {
				return nil, fmt.Errorf("relation: delta appending to %q: %w", r.detNames[i], err)
			}
			nc := make([]float64, newN+a, newN+a)
			copy(nc, old)
			for j, row := range d.Append {
				nc[newN+j] = row[r.detNames[i]]
			}
			newCols[i] = nc
			newSrcs[i] = nil
		}
		if newOrig != nil {
			if r.nextOrig == 0 {
				r.nextOrig = r.baseSize()
			}
			orig := make([]int, newN+a)
			copy(orig, newOrig)
			for j := 0; j < a; j++ {
				orig[newN+j] = r.nextOrig
				r.nextOrig++
			}
			newOrig = orig
			for i, sa := range newStochs {
				newStochs[i] = stochAttr{name: sa.name, vg: rewrapVG(sa.vg, newOrig)}
			}
		}
		for attr, m := range newMeans {
			i := r.stochIdx[attr]
			vg := newStochs[i].vg
			nc := make([]float64, newN+a)
			copy(nc, m)
			for j := 0; j < a; j++ {
				mean := vg.ExactMean(newN + j)
				if mean != mean { // NaN: no closed form to extend with
					return nil, fmt.Errorf("relation: cannot extend means of %q on append (no closed-form mean)", attr)
				}
				nc[newN+j] = mean
			}
			newMeans[attr] = nc
		}
		newN += a
		cs.Appended = a
	}

	if cs.Empty() {
		cs.To = cs.From
		return cs, nil // nothing changed; do not bump the version
	}

	// --- commit ---
	r.lazyMu.Lock()
	r.detCols = newCols
	r.lazyMu.Unlock()
	r.detSrcs = newSrcs
	r.stochs = newStochs
	r.means = newMeans
	r.origIdx = newOrig
	r.n = newN
	to := r.version.Add(1)
	cs.To = to
	for _, c := range cs.Cols {
		r.colEpochs = setEpoch(r.colEpochs, c, to)
	}
	for _, a := range cs.Attrs {
		r.colEpochs = setEpoch(r.colEpochs, a, to)
	}
	if cs.MembershipChanged() {
		r.memberEpoch = to
	}
	r.deltaLog = append(r.deltaLog, cs)
	if cap := int(deltaLogCap.Load()); len(r.deltaLog) > cap {
		r.deltaLog = append([]*ChangeSet(nil), r.deltaLog[len(r.deltaLog)-cap:]...)
	}
	r.snap = nil

	deltasApplied.Add(1)
	deltaCells.Add(int64(cells))
	deltaAppends.Add(int64(cs.Appended))
	deltaDeletes.Add(int64(len(deletes)))
	return cs, nil
}

// ColumnEpoch returns the version at which the named column or attribute
// last changed through a delta (0 when never delta-patched), and the
// version at which the tuple membership last changed.
func (r *Relation) ColumnEpoch(name string) (colEpoch, memberEpoch uint64) {
	host := r.Base()
	host.mutMu.Lock()
	defer host.mutMu.Unlock()
	return host.colEpochs[name], host.memberEpoch
}

func setEpoch(m map[string]uint64, k string, v uint64) map[string]uint64 {
	if m == nil {
		m = map[string]uint64{}
	}
	m[k] = v
	return m
}

// residentCol returns the resident values of column i, reading fully
// through the source when the column is lazy (without promoting the shared
// column — the caller is building a private replacement anyway).
func (r *Relation) residentCol(i int, col []float64) ([]float64, error) {
	if col != nil {
		return col, nil
	}
	src := r.detSrcs[i]
	if src == nil {
		return nil, fmt.Errorf("column %d has neither resident values nor a source", i)
	}
	out := make([]float64, r.n)
	if err := src.ReadAt(out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// baseSize returns the size of the original base index space (the
// high-water original index + 1).
func (r *Relation) baseSize() int {
	if r.origIdx == nil {
		return r.n
	}
	max := 0
	for _, t := range r.origIdx {
		if t >= max {
			max = t + 1
		}
	}
	return max
}

// appendable reports whether a VG function can serve tuple indices beyond
// the current size (only broadcast IndependentVGs can: every tuple draws
// from the same distribution under its own substream).
func appendable(vg VGFunc) bool {
	switch v := vg.(type) {
	case *IndependentVG:
		return len(v.Dists) == 1
	case *remappedVG:
		return appendable(v.inner)
	default:
		return false
	}
}

// rewrapVG rebinds a (possibly already remapped) VG to a new OrigIndex
// mapping. The innermost VG is preserved so substream identity follows the
// original base indices.
func rewrapVG(vg VGFunc, orig []int) VGFunc {
	if rv, ok := vg.(*remappedVG); ok {
		vg = rv.inner
	}
	return &remappedVG{inner: vg, orig: orig}
}
