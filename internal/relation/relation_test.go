package relation

import (
	"math"
	"strings"
	"testing"

	"spq/internal/dist"
	"spq/internal/rng"
)

func newTestRelation(t *testing.T, n int) *Relation {
	t.Helper()
	r := New("test", n)
	price := make([]float64, n)
	for i := range price {
		price[i] = float64(100 + i)
	}
	if err := r.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := r.AddStoch("gain", &IndependentVG{AttrID: 1, Dists: []dist.Dist{dist.Normal{Mu: 2, Sigma: 1}}}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBasicAccessors(t *testing.T) {
	r := newTestRelation(t, 5)
	if r.Name() != "test" || r.N() != 5 {
		t.Fatalf("Name/N wrong: %q %d", r.Name(), r.N())
	}
	if !r.HasAttr("price") || !r.HasAttr("gain") || r.HasAttr("nope") {
		t.Fatal("HasAttr wrong")
	}
	if r.IsStochastic("price") || !r.IsStochastic("gain") {
		t.Fatal("IsStochastic wrong")
	}
	if got := r.DetNames(); len(got) != 1 || got[0] != "price" {
		t.Fatalf("DetNames = %v", got)
	}
	if got := r.StochNames(); len(got) != 1 || got[0] != "gain" {
		t.Fatalf("StochNames = %v", got)
	}
}

func TestColumnLengthValidation(t *testing.T) {
	r := New("x", 3)
	if err := r.AddDet("bad", []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDuplicateAttrRejected(t *testing.T) {
	r := newTestRelation(t, 3)
	if err := r.AddDet("price", make([]float64, 3)); err == nil {
		t.Fatal("expected duplicate error")
	}
	if err := r.AddStoch("gain", &IndependentVG{AttrID: 9, Dists: []dist.Dist{dist.Degenerate{}}}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if err := r.AddStoch("price", &IndependentVG{AttrID: 9, Dists: []dist.Dist{dist.Degenerate{}}}); err == nil {
		t.Fatal("expected cross-kind duplicate error")
	}
}

func TestValueDeterministicColumnIgnoresScenario(t *testing.T) {
	r := newTestRelation(t, 4)
	src := rng.NewSource(1)
	a, _ := r.Value(src, "price", 2, 0)
	b, _ := r.Value(src, "price", 2, 99)
	if a != b || a != 102 {
		t.Fatalf("price values: %v %v, want 102", a, b)
	}
}

func TestStochasticValueReproducible(t *testing.T) {
	r := newTestRelation(t, 4)
	src := rng.NewSource(7)
	a, _ := r.Value(src, "gain", 1, 3)
	b, _ := r.Value(src, "gain", 1, 3)
	if a != b {
		t.Fatal("same coordinate produced different realizations")
	}
	c, _ := r.Value(src, "gain", 1, 4)
	if a == c {
		t.Fatal("different scenarios produced identical realizations")
	}
	d, _ := r.Value(src, "gain", 2, 3)
	if a == d {
		t.Fatal("different tuples produced identical realizations")
	}
}

func TestRealizeMatchesValue(t *testing.T) {
	r := newTestRelation(t, 6)
	src := rng.NewSource(5)
	out := make([]float64, 6)
	if err := r.Realize(src, "gain", 2, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		v, _ := r.Value(src, "gain", i, 2)
		if out[i] != v {
			t.Fatalf("Realize[%d] = %v, Value = %v", i, out[i], v)
		}
	}
}

func TestRealizeUnknownAttr(t *testing.T) {
	r := newTestRelation(t, 2)
	if err := r.Realize(rng.NewSource(1), "zzz", 0, make([]float64, 2)); err == nil {
		t.Fatal("expected error")
	}
	if err := r.Realize(rng.NewSource(1), "gain", 0, make([]float64, 1)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestComputeMeansExact(t *testing.T) {
	r := newTestRelation(t, 3)
	r.ComputeMeans(rng.NewSource(2), 10)
	m, err := r.Means("gain")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m {
		if v != 2 { // Normal(2,1) has closed-form mean
			t.Fatalf("mean[%d] = %v, want exact 2", i, v)
		}
	}
}

func TestComputeMeansSampled(t *testing.T) {
	r := New("x", 2)
	// Pareto(1,1) has no finite mean → sampled estimate path.
	if err := r.AddStoch("v", &IndependentVG{AttrID: 3, Dists: []dist.Dist{dist.Pareto{Sigma: 1, Alpha: 1}}}); err != nil {
		t.Fatal(err)
	}
	r.ComputeMeans(rng.NewSource(3), 500)
	m, err := r.Means("v")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m {
		if v < 1 || math.IsNaN(v) {
			t.Fatalf("sampled mean[%d] = %v, want ≥ 1 (Pareto support)", i, v)
		}
	}
}

func TestMeansWithoutComputeFails(t *testing.T) {
	r := newTestRelation(t, 2)
	if _, err := r.Means("gain"); err == nil {
		t.Fatal("expected error before ComputeMeans")
	}
	if _, err := r.Means("price"); err != nil {
		t.Fatal("deterministic means should always work")
	}
}

func TestSetMeans(t *testing.T) {
	r := newTestRelation(t, 2)
	if err := r.SetMeans("gain", []float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	m, _ := r.Means("gain")
	if m[0] != 5 || m[1] != 6 {
		t.Fatalf("means = %v", m)
	}
	if err := r.SetMeans("price", []float64{1, 2}); err == nil {
		t.Fatal("SetMeans on deterministic column should fail")
	}
	if err := r.SetMeans("gain", []float64{1}); err == nil {
		t.Fatal("SetMeans with wrong length should fail")
	}
}

func TestSelectPreservesSubstreamIdentity(t *testing.T) {
	r := newTestRelation(t, 10)
	src := rng.NewSource(9)
	view := r.Select(func(tuple int) bool { return tuple%2 == 1 })
	if view.N() != 5 {
		t.Fatalf("view has %d tuples, want 5", view.N())
	}
	for k := 0; k < view.N(); k++ {
		orig := view.OrigIndex(k)
		if orig != 2*k+1 {
			t.Fatalf("OrigIndex(%d) = %d, want %d", k, orig, 2*k+1)
		}
		a, _ := view.Value(src, "gain", k, 7)
		b, _ := r.Value(src, "gain", orig, 7)
		if a != b {
			t.Fatalf("view tuple %d realization %v != base tuple %d realization %v", k, a, orig, b)
		}
		pv, _ := view.Det("price")
		pb, _ := r.Det("price")
		if pv[k] != pb[orig] {
			t.Fatal("deterministic column not remapped")
		}
	}
}

func TestSelectCopiesMeans(t *testing.T) {
	r := newTestRelation(t, 4)
	r.ComputeMeans(rng.NewSource(2), 10)
	view := r.Select(func(tuple int) bool { return tuple >= 2 })
	m, err := view.Means("gain")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[0] != 2 {
		t.Fatalf("view means = %v", m)
	}
}

func TestGroupedVGCorrelation(t *testing.T) {
	// Tuples 0,1 share group 0; tuple 2 is group 1. Eval returns the first
	// normal draw scaled by tuple-specific factors, so same-group tuples
	// are perfectly correlated.
	n := 3
	factors := []float64{1, 2, 1}
	vg := &GroupedVG{
		AttrID: 4,
		Group:  []int{0, 0, 1},
		Eval: func(s *rng.Stream, tuple int) float64 {
			return factors[tuple] * s.Norm()
		},
	}
	r := New("g", n)
	if err := r.AddStoch("v", vg); err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(11)
	for j := 0; j < 50; j++ {
		v0, _ := r.Value(src, "v", 0, j)
		v1, _ := r.Value(src, "v", 1, j)
		v2, _ := r.Value(src, "v", 2, j)
		if math.Abs(v1-2*v0) > 1e-12 {
			t.Fatalf("scenario %d: same-group tuples not correlated: %v vs %v", j, v0, v1)
		}
		if v2 == v0 {
			t.Fatalf("scenario %d: different groups share randomness", j)
		}
	}
}

func TestGroupedVGExactMeans(t *testing.T) {
	vg := &GroupedVG{AttrID: 1, Group: []int{0}, Eval: func(*rng.Stream, int) float64 { return 0 }}
	if !math.IsNaN(vg.ExactMean(0)) {
		t.Fatal("nil Means should report NaN")
	}
	vg.Means = []float64{3.5}
	if vg.ExactMean(0) != 3.5 {
		t.Fatal("Means not used")
	}
}

func TestIndependentVGPerTupleDists(t *testing.T) {
	vg := &IndependentVG{AttrID: 2, Dists: []dist.Dist{
		dist.Degenerate{Value: 1},
		dist.Degenerate{Value: 2},
	}}
	src := rng.NewSource(1)
	if vg.Value(src, 0, 0) != 1 || vg.Value(src, 1, 0) != 2 {
		t.Fatal("per-tuple distributions not honored")
	}
	if vg.ExactMean(1) != 2 {
		t.Fatal("per-tuple exact mean wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := newTestRelation(t, 3)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("back", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 {
		t.Fatalf("N = %d, want 3", back.N())
	}
	orig, _ := r.Det("price")
	got, _ := back.Det("price")
	for i := range orig {
		if orig[i] != got[i] {
			t.Fatalf("price[%d] = %v, want %v", i, got[i], orig[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("a\nnot-a-number\n")); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	rel, err := ReadCSV("x", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.N() != 0 {
		t.Fatalf("N = %d, want 0", rel.N())
	}
}
