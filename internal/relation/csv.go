package relation

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the deterministic columns as CSV with a header row.
// Stochastic attributes have no deterministic values and are omitted;
// persist their definitions in code or export realized scenarios instead.
// Lazy columns are written block-wise without promotion.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.detNames); err != nil {
		return err
	}
	record := make([]string, len(r.detNames))
	row := make([]float64, len(r.detNames))
	for t := 0; t < r.n; t++ {
		for i, name := range r.detNames {
			if col := r.detCols[i]; col != nil {
				row[i] = col[t]
			} else if err := r.DetBlock(name, t, row[i:i+1]); err != nil {
				return err
			}
			record[i] = strconv.FormatFloat(row[i], 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// readCSVRows streams numeric records off rd row by row: it reads the header,
// then calls emit once per data row with the parsed values (the slice is
// reused across rows). Errors name the input line the offending field starts
// on — not the record ordinal, which differs once quoted fields span lines.
// It returns the header and the number of data rows.
func readCSVRows(rd io.Reader, emit func(vals []float64) error) ([]string, int, error) {
	cr := csv.NewReader(rd)
	cr.TrimLeadingSpace = true
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, 0, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	header = append([]string(nil), header...) // ReuseRecord aliases the record
	vals := make([]float64, len(header))
	rows := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// encoding/csv's ParseError already carries the line number
			// (including wrong-field-count rows).
			return nil, 0, fmt.Errorf("relation: reading CSV: %w", err)
		}
		for i, field := range record {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				line, _ := cr.FieldPos(i)
				return nil, 0, fmt.Errorf("relation: CSV line %d column %q: %w", line, header[i], err)
			}
			vals[i] = v
		}
		if err := emit(vals); err != nil {
			return nil, 0, err
		}
		rows++
	}
	return header, rows, nil
}

// ReadCSV builds a relation from CSV data with a header row of column names
// and numeric values, parsing row-by-row off the reader (never slurping the
// input). All columns are deterministic; attach stochastic attributes with
// AddStoch afterwards. Errors report input line numbers.
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	var cols [][]float64
	header, rows, err := readCSVRows(rd, func(vals []float64) error {
		if cols == nil {
			cols = make([][]float64, len(vals))
		}
		for i, v := range vals {
			cols[i] = append(cols[i], v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rel := New(name, rows)
	if cols == nil {
		cols = make([][]float64, len(header))
	}
	for i, colName := range header {
		if cols[i] == nil {
			cols[i] = []float64{}
		}
		if err := rel.AddDet(colName, cols[i]); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// SpillCSV streams CSV data into a column-file directory (one binary column
// file per header column plus a manifest) in constant memory, then opens the
// result as a lazy relation. It is the out-of-core load path: a 10M-tuple
// catalog spills once and every subsequent open maps the columns lazily.
// nil cache → the process default block cache for the non-mmap fallback.
func SpillCSV(name string, rd io.Reader, dir string, cache *BlockCache) (*Relation, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var writers []*ColumnWriter
	closeAll := func() {
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
	}
	header, rows, err := readCSVRows(rd, func(vals []float64) error {
		if writers == nil {
			writers = make([]*ColumnWriter, len(vals))
			for i := range writers {
				w, err := NewColumnWriter(columnPath(dir, i))
				if err != nil {
					return err
				}
				writers[i] = w
			}
		}
		for i, v := range vals {
			if err := writers[i].Append(v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	if writers == nil { // header-only input still yields valid column files
		writers = make([]*ColumnWriter, len(header))
		for i := range writers {
			w, err := NewColumnWriter(columnPath(dir, i))
			if err != nil {
				closeAll()
				return nil, err
			}
			writers[i] = w
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	m := manifest{Name: name, N: rows, Columns: header}
	raw, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(manifestPath(dir), raw, 0o644); err != nil {
		return nil, err
	}
	return OpenColumnDir(dir, cache)
}
