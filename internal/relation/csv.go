package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the deterministic columns as CSV with a header row.
// Stochastic attributes have no deterministic values and are omitted;
// persist their definitions in code or export realized scenarios instead.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.detNames); err != nil {
		return err
	}
	record := make([]string, len(r.detNames))
	for t := 0; t < r.n; t++ {
		for i := range r.detCols {
			record[i] = strconv.FormatFloat(r.detCols[i][t], 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV builds a relation from CSV data with a header row of column names
// and numeric values. All columns are deterministic; attach stochastic
// attributes with AddStoch afterwards.
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	cols := make([][]float64, len(header))
	rows := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV row %d: %w", rows+1, err)
		}
		if len(record) != len(header) {
			return nil, fmt.Errorf("relation: CSV row %d has %d fields, want %d", rows+1, len(record), len(header))
		}
		for i, field := range record {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV row %d column %q: %w", rows+1, header[i], err)
			}
			cols[i] = append(cols[i], v)
		}
		rows++
	}
	rel := New(name, rows)
	for i, colName := range header {
		if err := rel.AddDet(colName, cols[i]); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
