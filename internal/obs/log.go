package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Logger is a line-oriented structured logger with two formats: "text"
// (human-readable key=value) and "json" (one object per line, stable keys).
// It exists so spqd's access log and the slow-query log share one sink and
// one format switch without pulling in a logging dependency.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
	now  func() time.Time // test seam
}

// NewLogger returns a logger writing to w. format is "text" or "json".
func NewLogger(w io.Writer, format string) (*Logger, error) {
	switch format {
	case "", "text":
		return &Logger{w: w, now: time.Now}, nil
	case "json":
		return &Logger{w: w, json: true, now: time.Now}, nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// JSON reports whether the logger emits JSON lines.
func (l *Logger) JSON() bool { return l != nil && l.json }

// Event writes one log line. fields is a flat map; keys "ts" and "event"
// are reserved. Multi-line string values (a rendered span tree, say) are
// emitted verbatim in text mode, indented under the event line.
func (l *Logger) Event(event string, fields map[string]any) {
	if l == nil {
		return
	}
	ts := l.now().UTC()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.json {
		obj := make(map[string]any, len(fields)+2)
		obj["ts"] = ts.Format(time.RFC3339Nano)
		obj["event"] = event
		for k, v := range fields {
			obj[k] = v
		}
		b, err := json.Marshal(obj)
		if err != nil {
			b = []byte(fmt.Sprintf(`{"ts":%q,"event":%q,"error":"marshal failed"}`,
				ts.Format(time.RFC3339Nano), event))
		}
		l.w.Write(append(b, '\n'))
		return
	}
	var sb strings.Builder
	sb.WriteString(ts.Format("2006-01-02T15:04:05.000Z"))
	sb.WriteString(" event=")
	sb.WriteString(event)
	keys := make([]string, 0, len(fields))
	var blocks []string
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := fmt.Sprint(fields[k])
		if strings.Contains(v, "\n") {
			blocks = append(blocks, v)
			continue
		}
		sb.WriteByte(' ')
		sb.WriteString(k)
		sb.WriteByte('=')
		if strings.ContainsAny(v, " \t\"") {
			sb.WriteString(fmt.Sprintf("%q", v))
		} else {
			sb.WriteString(v)
		}
	}
	sb.WriteByte('\n')
	for _, blk := range blocks {
		for _, line := range strings.Split(strings.TrimRight(blk, "\n"), "\n") {
			sb.WriteString("    ")
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	io.WriteString(l.w, sb.String())
}
