package obs

import (
	"context"
	"strings"
)

type ctxKey struct{}

// ContextWithSpan returns a context carrying span as the current span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, span)
}

// SpanFromContext returns the current span, or nil when the context is
// untraced. Nil spans are inert, so callers never need to check.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// derived context carrying it. On an untraced context it returns ctx and a
// nil (inert) span, so instrumentation is unconditional.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

// TraceParent is the X-Spq-Trace wire form: "<trace-id>/<parent-span-name>".
// The parent span name is informational (nesting happens by grafting the
// worker's rendered tree under the coordinator's dispatch span); the trace
// ID is what makes the two sides correlate.
func TraceParent(s *Span) string {
	if s == nil {
		return ""
	}
	return s.TraceID() + "/" + s.Name()
}

// ParseTraceParent splits a wire trace-parent into trace ID and parent span
// name. An empty or malformed value yields ("", "").
func ParseTraceParent(tp string) (traceID, parent string) {
	if tp == "" {
		return "", ""
	}
	id, rest, ok := strings.Cut(tp, "/")
	if !ok {
		return tp, ""
	}
	if id == "" {
		return "", ""
	}
	return id, rest
}
