package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of hand-rolled instruments rendered in
// Prometheus text exposition format. It is the single source of truth for
// operational counters: the engine's /stats snapshot is re-derived from the
// same instruments, so the two surfaces cannot drift.
//
// All instruments are safe for concurrent use; registration is expected at
// construction time but is also safe concurrently.
type Registry struct {
	mu    sync.Mutex
	order []metric
	names map[string]bool
}

type metric interface {
	write(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(name string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = true
	r.order = append(r.order, m)
}

// WritePrometheus renders every registered instrument, in registration
// order, in Prometheus text format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := append([]metric(nil), r.order...)
	r.mu.Unlock()
	for _, m := range metrics {
		m.write(w)
	}
}

// Handler returns the GET /metrics handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ---- Counter ----

// Counter is a monotonically increasing atomic int64.
type Counter struct {
	name, help string
	labels     string // rendered label pairs, e.g. `tenant="acme"` (may be empty)
	v          atomic.Int64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	c.writeRow(w)
}

func (c *Counter) writeRow(w io.Writer) {
	if c.labels != "" {
		fmt.Fprintf(w, "%s{%s} %d\n", c.name, c.labels, c.v.Load())
		return
	}
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// ---- CounterVec ----

// CounterVec is a family of counters split by one label (e.g. tenant).
// Children are created on first use and rendered in label order. Callers
// are expected to bound label cardinality themselves (the engine folds
// unknown tenants into the default tenant before touching the vec).
type CounterVec struct {
	name, help string
	label      string
	mu         sync.Mutex
	children   map[string]*Counter
}

// NewCounterVec registers and returns a counter family keyed by a single
// label.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label,
		children: make(map[string]*Counter)}
	r.register(name, v)
	return v
}

// With returns the child counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{name: v.name, help: v.help,
			labels: v.label + "=" + strconv.Quote(value)}
		v.children[value] = c
	}
	return c
}

// Value returns the current count for the given label value (0 when the
// child has never been touched).
func (v *CounterVec) Value(value string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c.Value()
	}
	return 0
}

func (v *CounterVec) write(w io.Writer) {
	writeHeader(w, v.name, v.help, "counter")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Counter, len(keys))
	for i, k := range keys {
		kids[i] = v.children[k]
	}
	v.mu.Unlock()
	for _, c := range kids {
		c.writeRow(w)
	}
}

// ---- Gauge ----

// Gauge is an atomic int64 that can move in both directions.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Add moves the gauge by d and returns the new value.
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger (monotone high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// ---- GaugeFunc ----

// gaugeFunc reads its value from a callback at scrape time; used for values
// owned by other subsystems (cache sizes, remote dispatch stats).
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeFunc{name: name, help: help, fn: fn})
}

func (g *gaugeFunc) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// ---- Histogram ----

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each le bucket counts observations <= its upper bound, plus +Inf).
// The sum is kept as float64 bits updated by CAS.
type Histogram struct {
	name, help string
	labels     string // rendered label pairs sans le, e.g. `phase="solve",`
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits    atomic.Uint64
	count      atomic.Int64
}

// DefBuckets is the default latency bucket layout, in seconds.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60}

func newHistogram(name, help, labels string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly increasing: " + name)
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		labels: labels,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (DefBuckets when nil).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, "", bounds)
	r.register(name, h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(w io.Writer) {
	writeHeader(w, h.name, h.help, "histogram")
	h.writeRows(w)
}

func (h *Histogram) writeRows(w io.Writer) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", h.name, h.labels, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, h.labels, cum)
	suffix := ""
	if h.labels != "" {
		suffix = "{" + trimComma(h.labels) + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, suffix, cum)
}

// ---- HistogramVec ----

// HistogramVec is a family of histograms split by one label (e.g. phase).
// Children are created on first use and rendered in label order.
type HistogramVec struct {
	name, help string
	label      string
	bounds     []float64
	mu         sync.Mutex
	children   map[string]*Histogram
}

// NewHistogramVec registers and returns a histogram family keyed by a
// single label.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	v := &HistogramVec{name: name, help: help, label: label, bounds: bounds,
		children: make(map[string]*Histogram)}
	r.register(name, v)
	return v
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		labels := v.label + "=" + strconv.Quote(value) + ","
		h = newHistogram(v.name, v.help, labels, v.bounds)
		v.children[value] = h
	}
	return h
}

// Observe records one observation under the given label value.
func (v *HistogramVec) Observe(value string, obs float64) { v.With(value).Observe(obs) }

func (v *HistogramVec) write(w io.Writer) {
	writeHeader(w, v.name, v.help, "histogram")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Histogram, len(keys))
	for i, k := range keys {
		kids[i] = v.children[k]
	}
	v.mu.Unlock()
	for _, h := range kids {
		h.writeRows(w)
	}
}

// ---- rendering helpers ----

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func trimComma(labels string) string {
	if n := len(labels); n > 0 && labels[n-1] == ',' {
		return labels[:n-1]
	}
	return labels
}
