// Package obs is the engine's dependency-free observability layer:
// request-scoped span traces (this file), a named metrics registry with
// Prometheus text exposition (metrics.go), and a small structured logger
// (log.go). Everything here is strictly observational — nothing in this
// package may influence evaluation results, which is why no identifier or
// timestamp minted here ever participates in cache keys or solver state.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxSpanChildren bounds the fan-out recorded under a single span so a
// pathological query (thousands of CSA iterations, say) cannot grow a trace
// without bound. Excess children are counted, not stored.
const maxSpanChildren = 512

// Trace is one request-scoped span tree. A trace is created at admission
// (or adopted from an upstream coordinator via its wire parent), carried
// through the evaluation by context, and rendered on demand — including
// mid-flight, so the trace endpoint works on running jobs.
type Trace struct {
	id   string
	mu   sync.Mutex
	root *Span

	// onEnd, when set, observes every finished span. The engine uses it to
	// feed phase-latency histograms from the same events that build the tree.
	onEnd func(name string, d time.Duration)
}

// Span is one timed phase within a trace. All mutation is guarded by the
// owning trace's mutex: shard solves start sibling spans concurrently.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
	dropped  int
	// remote holds grafted subtrees imported from another process (a
	// worker's rendered trace nested under this dispatch span).
	remote []*SpanData
}

// Attr is one key/value annotation on a span. Values are strings on the
// wire; use SetInt for numeric attributes.
type Attr struct {
	Key   string
	Value string
}

// NewTraceID mints a random 16-hex-digit trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to a
		// fixed marker rather than plumbing an error through every caller.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts a trace with a fresh ID and a root span named name.
func NewTrace(name string) *Trace {
	return NewTraceWithID(NewTraceID(), name)
}

// NewTraceWithID starts a trace under an existing (upstream) trace ID, used
// by workers adopting a coordinator's trace from the wire.
func NewTraceWithID(id, name string) *Trace {
	tr := &Trace{id: id}
	tr.root = &Span{tr: tr, name: name, start: time.Now()}
	return tr
}

// ID returns the trace identifier.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// OnSpanEnd registers fn to be called for every span that finishes,
// including grafted remote roots' local parent. Set it before the trace is
// shared across goroutines.
func (t *Trace) OnSpanEnd(fn func(name string, d time.Duration)) {
	if t != nil {
		t.onEnd = fn
	}
}

// StartChild opens a child span under s. Nil receivers are inert, which
// lets instrumentation run unconditionally on untraced paths.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	s.tr.mu.Lock()
	if len(s.children) >= maxSpanChildren {
		s.dropped++
		s.tr.mu.Unlock()
		// Still return a live span so attrs/End behave; it just isn't kept.
		return c
	}
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End marks the span finished. Repeated calls keep the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.end.IsZero() {
		s.tr.mu.Unlock()
		return
	}
	s.end = time.Now()
	d := s.end.Sub(s.start)
	onEnd := s.tr.onEnd
	name := s.name
	s.tr.mu.Unlock()
	if onEnd != nil {
		onEnd(name, d)
	}
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) { s.SetAttr(key, formatInt(v)) }

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the owning trace's ID ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// AttachRemote grafts an externally rendered span tree (a worker's trace)
// under s. The subtree is stored as-is; Data() splices it into the render.
func (s *Span) AttachRemote(sub *SpanData) {
	if s == nil || sub == nil {
		return
	}
	s.tr.mu.Lock()
	s.remote = append(s.remote, sub)
	s.tr.mu.Unlock()
}

// SpanData is the serialized form of a span tree: what the trace endpoint
// returns and what travels on the v1 wire between worker and coordinator.
// Start times are absolute unix microseconds so spans from different
// processes line up (modulo clock skew); durations are microseconds.
type SpanData struct {
	TraceID     string            `json:"trace_id,omitempty"` // set on roots only
	Name        string            `json:"name"`
	StartUnixUS int64             `json:"start_us"`
	DurationUS  int64             `json:"duration_us"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Children    []*SpanData       `json:"children,omitempty"`
}

// Data renders a snapshot of the trace. Unfinished spans report a zero
// duration; the snapshot is safe to take while the trace is still being
// written.
func (t *Trace) Data() *SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.root.dataLocked()
	d.TraceID = t.id
	return d
}

func (s *Span) dataLocked() *SpanData {
	d := &SpanData{
		Name:        s.name,
		StartUnixUS: s.start.UnixMicro(),
	}
	if !s.end.IsZero() {
		d.DurationUS = s.end.Sub(s.start).Microseconds()
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs)+1)
		for _, a := range s.attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	if s.dropped > 0 {
		if d.Attrs == nil {
			d.Attrs = make(map[string]string, 1)
		}
		d.Attrs["dropped_children"] = formatInt(int64(s.dropped))
	}
	for _, c := range s.children {
		d.Children = append(d.Children, c.dataLocked())
	}
	d.Children = append(d.Children, s.remote...)
	return d
}

// Walk visits every span in the tree depth-first, parents before children.
func (d *SpanData) Walk(fn func(*SpanData)) {
	if d == nil {
		return
	}
	fn(d)
	for _, c := range d.Children {
		c.Walk(fn)
	}
}

// PhaseName collapses per-instance span names onto a bounded phase label
// for metrics: "sketch/shard17" → "sketch/shard". Names without a trailing
// index pass through unchanged.
func PhaseName(name string) string {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	return name[:i]
}

// Render draws the span tree as an indented text table with durations and
// attributes, for `spq -trace-tree` and slow-query logs.
func Render(d *SpanData) string {
	var b strings.Builder
	if d == nil {
		return ""
	}
	if d.TraceID != "" {
		b.WriteString("trace " + d.TraceID + "\n")
	}
	renderNode(&b, d, 0)
	return b.String()
}

func renderNode(b *strings.Builder, d *SpanData, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(d.Name)
	b.WriteString("  ")
	if d.DurationUS > 0 {
		b.WriteString(time.Duration(d.DurationUS * int64(time.Microsecond)).Round(10 * time.Microsecond).String())
	} else {
		b.WriteString("(running)")
	}
	if d.TraceID != "" && depth > 0 {
		b.WriteString("  [trace " + d.TraceID + "]")
	}
	if len(d.Attrs) > 0 {
		keys := make([]string, 0, len(d.Attrs))
		for k := range d.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString("  " + k + "=" + d.Attrs[k])
		}
	}
	b.WriteByte('\n')
	for _, c := range d.Children {
		renderNode(b, c, depth+1)
	}
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }
