package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTreeAndContext(t *testing.T) {
	tr := NewTrace("query")
	ctx := ContextWithSpan(context.Background(), tr.Root())

	ctx2, solve := StartSpan(ctx, "solve")
	if solve == nil {
		t.Fatal("expected live span under traced context")
	}
	_, shard := StartSpan(ctx2, "sketch/shard3")
	shard.SetInt("nodes", 42)
	shard.End()
	solve.End()
	tr.Root().End()

	d := tr.Data()
	if d.TraceID != tr.ID() || d.Name != "query" {
		t.Fatalf("root = %+v", d)
	}
	if len(d.Children) != 1 || d.Children[0].Name != "solve" {
		t.Fatalf("children = %+v", d.Children)
	}
	sh := d.Children[0].Children[0]
	if sh.Name != "sketch/shard3" || sh.Attrs["nodes"] != "42" {
		t.Fatalf("shard span = %+v", sh)
	}
	if sh.DurationUS < 0 {
		t.Fatalf("negative duration %d", sh.DurationUS)
	}
	// JSON round-trip must be lossless for wire propagation.
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanData
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Children[0].Children[0].Attrs["nodes"] != "42" {
		t.Fatalf("round trip lost attrs: %s", b)
	}
}

func TestUntracedContextIsInert(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "solve")
	if sp != nil {
		t.Fatal("expected nil span on untraced context")
	}
	// All nil-span operations must be no-ops, not panics.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.End()
	sp.AttachRemote(&SpanData{Name: "x"})
	if got := SpanFromContext(ctx); got != nil {
		t.Fatalf("got span %v from untraced context", got)
	}
}

func TestSpanChildCap(t *testing.T) {
	tr := NewTrace("root")
	for i := 0; i < maxSpanChildren+10; i++ {
		tr.Root().StartChild("c").End()
	}
	d := tr.Data()
	if len(d.Children) != maxSpanChildren {
		t.Fatalf("children = %d, want %d", len(d.Children), maxSpanChildren)
	}
	if d.Attrs["dropped_children"] != "10" {
		t.Fatalf("dropped = %q", d.Attrs["dropped_children"])
	}
}

func TestAttachRemoteNestsUnderSpan(t *testing.T) {
	tr := NewTrace("coordinator")
	disp := tr.Root().StartChild("remote/dispatch")
	disp.AttachRemote(&SpanData{TraceID: tr.ID(), Name: "query", DurationUS: 7})
	disp.End()
	d := tr.Data()
	remote := d.Children[0].Children[0]
	if remote.Name != "query" || remote.TraceID != tr.ID() {
		t.Fatalf("remote graft = %+v", remote)
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr := NewTraceWithID("abcdef0123456789", "query")
	sp := tr.Root().StartChild("remote/dispatch")
	tp := TraceParent(sp)
	id, parent := ParseTraceParent(tp)
	if id != "abcdef0123456789" || parent != "remote/dispatch" {
		t.Fatalf("ParseTraceParent(%q) = %q, %q", tp, id, parent)
	}
	if id, _ := ParseTraceParent(""); id != "" {
		t.Fatal("empty trace parent must parse to empty id")
	}
}

func TestOnSpanEndFeedsHook(t *testing.T) {
	tr := NewTrace("query")
	var mu sync.Mutex
	seen := map[string]int{}
	tr.OnSpanEnd(func(name string, d time.Duration) {
		mu.Lock()
		seen[name]++
		mu.Unlock()
	})
	tr.Root().StartChild("validate").End()
	tr.Root().StartChild("validate").End()
	tr.Root().End()
	if seen["validate"] != 2 || seen["query"] != 1 {
		t.Fatalf("hook saw %v", seen)
	}
}

func TestPhaseName(t *testing.T) {
	for in, want := range map[string]string{
		"sketch/shard17": "sketch/shard",
		"validate":       "validate",
		"solve":          "solve",
		"shard0":         "shard",
	} {
		if got := PhaseName(in); got != want {
			t.Fatalf("PhaseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("spq_test_seconds", "test", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	// Cumulative semantics: 0.1 catches 0.05 and the boundary value 0.1.
	for _, want := range []string{
		`spq_test_seconds_bucket{le="0.1"} 2`,
		`spq_test_seconds_bucket{le="1"} 3`,
		`spq_test_seconds_bucket{le="10"} 4`,
		`spq_test_seconds_bucket{le="+Inf"} 5`,
		`spq_test_seconds_sum 55.65`,
		`spq_test_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestCounterVec covers the labelled counter family the engine uses for
// per-tenant admission counters: lazy child creation, Value for untouched
// children, sorted deterministic rendering under one TYPE header, and
// promtext-lintable output with quoted label values.
func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("spq_tenant_admitted_total", "Admissions by tenant.", "tenant")
	v.With("zeta").Inc()
	v.With("acme").Inc()
	v.With("acme").Add(2)
	if got := v.Value("acme"); got != 3 {
		t.Fatalf("acme = %d, want 3", got)
	}
	if got := v.Value("never"); got != 0 {
		t.Fatalf("untouched child = %d, want 0", got)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	lintPromText(t, out)
	if n := strings.Count(out, "# TYPE spq_tenant_admitted_total counter"); n != 1 {
		t.Fatalf("want exactly one TYPE header, got %d in:\n%s", n, out)
	}
	acme := strings.Index(out, `spq_tenant_admitted_total{tenant="acme"} 3`)
	zeta := strings.Index(out, `spq_tenant_admitted_total{tenant="zeta"} 1`)
	if acme < 0 || zeta < 0 {
		t.Fatalf("missing child rows in:\n%s", out)
	}
	if acme > zeta {
		t.Fatalf("children not rendered in sorted label order:\n%s", out)
	}
}

// promtext lint: every non-comment line of the exposition must match the
// text-format grammar (metric name, optional label set, float value).
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|[+-]Inf|NaN)$`)

func lintPromText(t *testing.T, out string) {
	t.Helper()
	types := map[string]bool{"counter": true, "gauge": true, "histogram": true}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || !types[parts[3]] {
				t.Fatalf("bad TYPE line %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line fails promtext lint: %q", line)
		}
	}
}

func TestPrometheusTextStableAndParseable(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("spq_queries_total", "Total queries.")
	g := r.NewGauge("spq_active", "Active queries.")
	r.NewGaugeFunc("spq_cache_len", "Cache size.", func() float64 { return 3 })
	v := r.NewHistogramVec("spq_phase_seconds", "Phase latency.", "phase", []float64{0.01, 0.1})
	c.Add(2)
	g.Set(1)
	v.Observe("solve", 0.05)
	v.Observe("validate", 0.005)

	render := func() string {
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		return buf.String()
	}
	out := render()
	lintPromText(t, out)
	if out != render() {
		t.Fatal("exposition not stable across renders")
	}
	for _, want := range []string{
		"# TYPE spq_queries_total counter",
		"spq_queries_total 2",
		`spq_phase_seconds_bucket{phase="solve",le="0.1"} 1`,
		`spq_phase_seconds_count{phase="validate"} 1`,
		"spq_cache_len 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("spq_x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "spq_x_total 1") {
		t.Fatalf("body: %s", rec.Body.String())
	}
}

// TestRegistryConcurrency drives every instrument type from many goroutines
// while scraping; meaningful under -race (CI runs the package with -race).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("spq_c_total", "c")
	g := r.NewGauge("spq_g", "g")
	h := r.NewHistogram("spq_h_seconds", "h", nil)
	v := r.NewHistogramVec("spq_v_seconds", "v", "phase", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.Add(1)
				g.SetMax(int64(j))
				h.Observe(float64(j) / 100)
				v.Observe([]string{"solve", "validate", "refine"}[j%3], 0.01)
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			r.WritePrometheus(&buf)
		}()
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Fatalf("counter = %d", c.Value())
	}
	if h.Count() != 8*500 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	lintPromText(t, buf.String())
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTrace("query")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.Root().StartChild("sketch/shard0")
			sp.SetInt("i", int64(i))
			sp.End()
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Data() // concurrent snapshot while spans mutate
		}()
	}
	wg.Wait()
	if got := len(tr.Data().Children); got != 16 {
		t.Fatalf("children = %d", got)
	}
}

func TestLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Event("http_request", map[string]any{"status": 200, "path": "/v1/queries"})
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("bad json line %q: %v", buf.String(), err)
	}
	if obj["event"] != "http_request" || obj["status"] != float64(200) {
		t.Fatalf("obj = %v", obj)
	}

	buf.Reset()
	l, err = NewLogger(&buf, "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Event("slow_query", map[string]any{"trace_id": "abc", "tree": "a 1ms\n  b 2ms"})
	out := buf.String()
	if !strings.Contains(out, "event=slow_query") || !strings.Contains(out, "trace_id=abc") {
		t.Fatalf("text line %q", out)
	}
	if !strings.Contains(out, "\n    a 1ms\n      b 2ms\n") {
		t.Fatalf("multiline block not indented: %q", out)
	}
	if _, err := NewLogger(&buf, "yaml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestRender(t *testing.T) {
	d := &SpanData{TraceID: "t1", Name: "query", DurationUS: 1500, Children: []*SpanData{
		{Name: "solve", DurationUS: 1000, Attrs: map[string]string{"nodes": "9"}},
		{Name: "running"},
	}}
	out := Render(d)
	if !strings.Contains(out, "trace t1") || !strings.Contains(out, "nodes=9") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "(running)") {
		t.Fatalf("unfinished span not marked:\n%s", out)
	}
}
