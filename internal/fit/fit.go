// Package fit implements the curve fitting CSA-Solve uses to choose the
// conservativeness parameter α (§5.2 of the paper): the history of
// (α, p-surplus) observations is fit with an arctangent model
//
//	r(α) ≈ a·atan(b·α + c) + d
//
// by damped Gauss–Newton (Levenberg–Marquardt), and the equation R(α) = 0 is
// solved for the minimally conservative α. A monotone linear-interpolation
// fallback handles short histories and degenerate fits.
package fit

import (
	"math"
	"sort"
)

// Arctan is the fitted model r(α) = A·atan(B·α + C) + D.
type Arctan struct {
	A, B, C, D float64
}

// Eval evaluates the model at x.
func (f Arctan) Eval(x float64) float64 {
	return f.A*math.Atan(f.B*x+f.C) + f.D
}

// Zero solves f(α) = 0 analytically. ok is false when the zero does not
// exist (|D/A| ≥ π/2 puts the target outside atan's range, or the model is
// degenerate).
func (f Arctan) Zero() (float64, bool) {
	if f.A == 0 || f.B == 0 {
		return 0, false
	}
	t := -f.D / f.A
	if math.Abs(t) >= math.Pi/2 {
		return 0, false
	}
	alpha := (math.Tan(t) - f.C) / f.B
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return 0, false
	}
	return alpha, true
}

// FitArctan fits the arctangent model to the observations by
// Levenberg–Marquardt. It requires at least 4 points (the model has 4
// parameters); ok reports whether the fit converged to a usable model.
func FitArctan(xs, ys []float64) (Arctan, bool) {
	n := len(xs)
	if n < 4 || n != len(ys) {
		return Arctan{}, false
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := 1; i < n; i++ {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	if maxX-minX < 1e-12 {
		return Arctan{}, false
	}
	// Initial guess: amplitude spans the y-range, the transition is centered
	// in the x-range with width comparable to it.
	f := Arctan{
		A: math.Max((maxY-minY)/math.Pi, 1e-6),
		B: 4 / (maxX - minX),
		C: -2 * (minX + maxX) / (maxX - minX),
		D: (minY + maxY) / 2,
	}
	lambda := 1e-3
	cost := sumSq(f, xs, ys)
	for iter := 0; iter < 200; iter++ {
		// Build normal equations JᵀJ + λI and Jᵀr for the 4 parameters.
		var jtj [4][4]float64
		var jtr [4]float64
		for i := 0; i < n; i++ {
			u := f.B*xs[i] + f.C
			den := 1 + u*u
			grad := [4]float64{
				math.Atan(u),      // ∂/∂A
				f.A * xs[i] / den, // ∂/∂B
				f.A / den,         // ∂/∂C
				1,                 // ∂/∂D
			}
			resid := ys[i] - f.Eval(xs[i])
			for a := 0; a < 4; a++ {
				jtr[a] += grad[a] * resid
				for b := 0; b < 4; b++ {
					jtj[a][b] += grad[a] * grad[b]
				}
			}
		}
		for a := 0; a < 4; a++ {
			jtj[a][a] += lambda * (jtj[a][a] + 1e-12)
		}
		delta, ok := solve4(jtj, jtr)
		if !ok {
			lambda *= 10
			if lambda > 1e12 {
				break
			}
			continue
		}
		trial := Arctan{A: f.A + delta[0], B: f.B + delta[1], C: f.C + delta[2], D: f.D + delta[3]}
		trialCost := sumSq(trial, xs, ys)
		if trialCost < cost {
			f = trial
			improvement := cost - trialCost
			cost = trialCost
			lambda = math.Max(lambda/3, 1e-12)
			if improvement < 1e-14 {
				break
			}
		} else {
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return Arctan{}, false
	}
	return f, true
}

func sumSq(f Arctan, xs, ys []float64) float64 {
	s := 0.0
	for i := range xs {
		d := ys[i] - f.Eval(xs[i])
		s += d * d
	}
	return s
}

// solve4 solves a 4×4 linear system by Gaussian elimination with partial
// pivoting.
func solve4(a [4][4]float64, b [4]float64) ([4]float64, bool) {
	var aug [4][5]float64
	for i := 0; i < 4; i++ {
		copy(aug[i][:4], a[i][:])
		aug[i][4] = b[i]
	}
	for col := 0; col < 4; col++ {
		piv, pv := -1, 1e-14
		for r := col; r < 4; r++ {
			if v := math.Abs(aug[r][col]); v > pv {
				piv, pv = r, v
			}
		}
		if piv < 0 {
			return [4]float64{}, false
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			fct := aug[r][col] / aug[col][col]
			for c := col; c < 5; c++ {
				aug[r][c] -= fct * aug[col][c]
			}
		}
	}
	var out [4]float64
	for i := 0; i < 4; i++ {
		out[i] = aug[i][4] / aug[i][i]
	}
	return out, true
}

// ZeroCrossingLinear estimates the zero of the underlying relationship by
// linear interpolation between the bracketing observations (after sorting by
// x). When all observations share a sign, it extrapolates from the two
// points nearest the crossing direction. ok is false with fewer than 2
// points or when the data give no usable slope.
func ZeroCrossingLinear(xs, ys []float64) (float64, bool) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return 0, false
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	// Bracketing pair: adjacent points with opposite signs.
	for i := 0; i+1 < n; i++ {
		y0, y1 := pts[i].y, pts[i+1].y
		if y0 == 0 {
			return pts[i].x, true
		}
		if (y0 < 0 && y1 >= 0) || (y0 > 0 && y1 <= 0) {
			if y1 == y0 {
				return pts[i].x, true
			}
			t := -y0 / (y1 - y0)
			return pts[i].x + t*(pts[i+1].x-pts[i].x), true
		}
	}
	if pts[n-1].y == 0 {
		return pts[n-1].x, true
	}
	// Extrapolate from the last two distinct-x points.
	i0, i1 := n-2, n-1
	for i0 >= 0 && pts[i1].x-pts[i0].x < 1e-12 {
		i0--
	}
	if i0 < 0 {
		return 0, false
	}
	slope := (pts[i1].y - pts[i0].y) / (pts[i1].x - pts[i0].x)
	if math.Abs(slope) < 1e-12 {
		return 0, false
	}
	return pts[i1].x - pts[i1].y/slope, true
}
