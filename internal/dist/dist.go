// Package dist provides the samplable distributions behind VG functions in
// the Monte Carlo data model (§2.2): each distribution draws variates from a
// deterministic rng.Stream, so a realization is a pure function of the
// substream it is handed. Distributions also expose their closed-form mean
// when one exists (NaN otherwise), which feeds the §3.2 precomputation of
// expected attribute values; heavy-tailed laws without a finite mean (e.g.
// Pareto with α ≤ 1) report NaN so callers fall back to scenario-average
// estimation.
package dist

import (
	"math"

	"spq/internal/rng"
)

// Dist is a samplable univariate distribution.
type Dist interface {
	// Sample draws one variate from the stream.
	Sample(s *rng.Stream) float64
	// Mean returns the closed-form expectation, or NaN when none exists
	// (undefined or infinite mean, or no closed form).
	Mean() float64
}

// Normal is the Gaussian distribution N(Mu, Sigma²).
type Normal struct {
	Mu    float64
	Sigma float64
}

// Sample implements Dist.
func (d Normal) Sample(s *rng.Stream) float64 { return d.Mu + d.Sigma*s.Norm() }

// Mean implements Dist.
func (d Normal) Mean() float64 { return d.Mu }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo float64
	Hi float64
}

// Sample implements Dist.
func (d Uniform) Sample(s *rng.Stream) float64 { return d.Lo + (d.Hi-d.Lo)*s.Float64() }

// Mean implements Dist.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// Exponential is the exponential distribution with rate Lambda, shifted by
// Loc: X = Loc + Exp(Lambda).
type Exponential struct {
	Lambda float64
	Loc    float64
}

// Sample implements Dist.
func (d Exponential) Sample(s *rng.Stream) float64 { return d.Loc + s.Exp()/d.Lambda }

// Mean implements Dist.
func (d Exponential) Mean() float64 { return d.Loc + 1/d.Lambda }

// Pareto is the Pareto type-I distribution with scale Sigma (minimum value)
// and shape Alpha.
type Pareto struct {
	Sigma float64
	Alpha float64
}

// Sample implements Dist (inverse CDF).
func (d Pareto) Sample(s *rng.Stream) float64 {
	return d.Sigma * math.Pow(s.OpenFloat64(), -1/d.Alpha)
}

// Mean implements Dist. The mean is infinite for Alpha ≤ 1; NaN is returned
// so callers estimate it by scenario averaging instead.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.NaN()
	}
	return d.Alpha * d.Sigma / (d.Alpha - 1)
}

// Poisson is the Poisson distribution with rate Lambda, shifted by Loc.
type Poisson struct {
	Lambda float64
	Loc    float64
}

// Sample implements Dist. Knuth's product method suffices for the small
// rates the workloads use; large rates fall back to a normal approximation.
func (d Poisson) Sample(s *rng.Stream) float64 {
	if d.Lambda > 30 {
		k := math.Round(d.Lambda + math.Sqrt(d.Lambda)*s.Norm())
		if k < 0 {
			k = 0
		}
		return d.Loc + k
	}
	limit := math.Exp(-d.Lambda)
	k, p := 0, 1.0
	for {
		p *= s.Float64()
		if p <= limit {
			return d.Loc + float64(k)
		}
		k++
	}
}

// Mean implements Dist.
func (d Poisson) Mean() float64 { return d.Loc + d.Lambda }

// StudentT is Student's t distribution with Nu degrees of freedom, located at
// Loc and scaled by Scale.
type StudentT struct {
	Nu    float64
	Loc   float64
	Scale float64
}

// Sample implements Dist: T = Z / sqrt(χ²_ν / ν).
func (d StudentT) Sample(s *rng.Stream) float64 {
	z := s.Norm()
	chi2 := 2 * sampleGamma(s, d.Nu/2)
	return d.Loc + d.Scale*z/math.Sqrt(chi2/d.Nu)
}

// Mean implements Dist. The mean is undefined for Nu ≤ 1.
func (d StudentT) Mean() float64 {
	if d.Nu <= 1 {
		return math.NaN()
	}
	return d.Loc
}

// sampleGamma draws from Gamma(shape, 1) with the Marsaglia–Tsang method,
// boosting shapes below 1.
func sampleGamma(s *rng.Stream, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a).
		return sampleGamma(s, shape+1) * math.Pow(s.OpenFloat64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.OpenFloat64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// GBM is a geometric Brownian motion price process with initial price S0,
// annualized drift Mu and volatility Sigma, advanced in time steps of Dt
// years. As a Dist it is the one-step marginal (the price after Dt).
type GBM struct {
	S0    float64
	Mu    float64
	Sigma float64
	Dt    float64
}

// step advances one price by a single Dt increment.
func (d GBM) step(price float64, z float64) float64 {
	return price * math.Exp((d.Mu-0.5*d.Sigma*d.Sigma)*d.Dt+d.Sigma*math.Sqrt(d.Dt)*z)
}

// Path fills path with the price after 1, 2, …, len(path) steps of one
// realized trajectory, consuming one normal variate per step from st.
func (d GBM) Path(st *rng.Stream, path []float64) {
	price := d.S0
	for i := range path {
		price = d.step(price, st.Norm())
		path[i] = price
	}
}

// MeanAt returns the expected price after h steps: S0·exp(Mu·h·Dt).
func (d GBM) MeanAt(h int) float64 { return d.S0 * math.Exp(d.Mu*float64(h)*d.Dt) }

// Sample implements Dist (the one-step price).
func (d GBM) Sample(s *rng.Stream) float64 { return d.step(d.S0, s.Norm()) }

// Mean implements Dist (the one-step expected price).
func (d GBM) Mean() float64 { return d.MeanAt(1) }

// Degenerate is a point mass at Value.
type Degenerate struct {
	Value float64
}

// Sample implements Dist.
func (d Degenerate) Sample(s *rng.Stream) float64 { return d.Value }

// Mean implements Dist.
func (d Degenerate) Mean() float64 { return d.Value }

// Shifted offsets another distribution by the constant Off.
type Shifted struct {
	Off float64
	D   Dist
}

// Sample implements Dist.
func (d Shifted) Sample(s *rng.Stream) float64 { return d.Off + d.D.Sample(s) }

// Mean implements Dist (NaN propagates from the underlying mean).
func (d Shifted) Mean() float64 { return d.Off + d.D.Mean() }

// Mixture is a finite mixture distribution: a component is chosen by weight,
// then sampled. Weights need not be normalized; they must be nonnegative
// with a positive sum.
type Mixture struct {
	Components []Dist
	Weights    []float64
}

// UniformMixture builds an equal-weight mixture — the data-integration model
// for D equally trusted sources (§6.1).
func UniformMixture(components ...Dist) Mixture {
	w := make([]float64, len(components))
	for i := range w {
		w[i] = 1
	}
	return Mixture{Components: components, Weights: w}
}

// Sample implements Dist.
func (d Mixture) Sample(s *rng.Stream) float64 {
	total := 0.0
	for _, w := range d.Weights {
		total += w
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range d.Weights {
		acc += w
		if u < acc {
			return d.Components[i].Sample(s)
		}
	}
	return d.Components[len(d.Components)-1].Sample(s)
}

// Mean implements Dist: the weighted average of component means (NaN when
// any component lacks one).
func (d Mixture) Mean() float64 {
	total, acc := 0.0, 0.0
	for i, w := range d.Weights {
		total += w
		acc += w * d.Components[i].Mean()
	}
	return acc / total
}
