package dist

import (
	"math"
	"testing"

	"spq/internal/rng"
)

// sampleStats draws n variates and returns the empirical mean and variance.
func sampleStats(d Dist, n int, seed uint64) (mean, variance float64) {
	s := rng.NewStream(seed)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(s)
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestMeansMatchSampling(t *testing.T) {
	cases := []struct {
		name string
		d    Dist
		tol  float64
	}{
		{"normal", Normal{Mu: 2, Sigma: 1.5}, 0.05},
		{"uniform", Uniform{Lo: -1, Hi: 3}, 0.05},
		{"exponential", Exponential{Lambda: 2, Loc: -0.5}, 0.05},
		{"pareto", Pareto{Sigma: 1, Alpha: 3}, 0.1},
		{"poisson", Poisson{Lambda: 2, Loc: -2}, 0.05},
		{"studentt", StudentT{Nu: 5, Loc: 1, Scale: 2}, 0.1},
		{"degenerate", Degenerate{Value: 4.25}, 0},
		{"shifted", Shifted{Off: 10, D: Normal{Mu: -1, Sigma: 1}}, 0.05},
		{"mixture", UniformMixture(Degenerate{Value: 1}, Degenerate{Value: 3}), 0.05},
	}
	for _, c := range cases {
		mean, _ := sampleStats(c.d, 200000, 0xfeed)
		want := c.d.Mean()
		if math.IsNaN(want) {
			t.Fatalf("%s: Mean() is NaN", c.name)
		}
		if math.Abs(mean-want) > c.tol {
			t.Errorf("%s: sample mean %.4f, closed-form %.4f", c.name, mean, want)
		}
	}
}

func TestHeavyTailsReportNaNMean(t *testing.T) {
	if !math.IsNaN((Pareto{Sigma: 1, Alpha: 1}).Mean()) {
		t.Error("Pareto α=1 should have NaN mean (infinite)")
	}
	if !math.IsNaN((StudentT{Nu: 1, Loc: 0, Scale: 1}).Mean()) {
		t.Error("StudentT ν=1 should have NaN mean (undefined)")
	}
	if !math.IsNaN((Shifted{Off: 5, D: Pareto{Sigma: 1, Alpha: 1}}).Mean()) {
		t.Error("Shifted heavy tail should propagate NaN")
	}
}

func TestNormalVariance(t *testing.T) {
	_, v := sampleStats(Normal{Mu: 0, Sigma: 2}, 200000, 0xbeef)
	if math.Abs(v-4) > 0.2 {
		t.Errorf("variance %.3f, want ~4", v)
	}
}

func TestGBMPathAndMean(t *testing.T) {
	g := GBM{S0: 100, Mu: 0.08, Sigma: 0.3, Dt: 1.0 / 252}
	// Monte Carlo mean of the h-step price must match MeanAt(h).
	const h, n = 5, 100000
	sum := 0.0
	path := make([]float64, h)
	for i := 0; i < n; i++ {
		st := rng.NewStream(uint64(i) + 1)
		g.Path(st, path)
		sum += path[h-1]
	}
	got := sum / n
	want := g.MeanAt(h)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("GBM %d-step mean %.3f, want %.3f", h, got, want)
	}
	// Prices must stay positive and the path must be a single trajectory.
	st := rng.NewStream(9)
	g.Path(st, path)
	for i, p := range path {
		if p <= 0 {
			t.Fatalf("non-positive price %v at step %d", p, i)
		}
	}
}

func TestPoissonNonNegativeCounts(t *testing.T) {
	d := Poisson{Lambda: 1}
	s := rng.NewStream(1)
	for i := 0; i < 1000; i++ {
		v := d.Sample(s)
		if v < 0 || v != math.Trunc(v) {
			t.Fatalf("Poisson sample %v is not a nonnegative integer", v)
		}
	}
}

// TestSamplingIsCoordinatePure asserts the property the whole engine relies
// on: the same stream seed yields the same variate.
func TestSamplingIsCoordinatePure(t *testing.T) {
	ds := []Dist{
		Normal{Mu: 1, Sigma: 2},
		Pareto{Sigma: 1, Alpha: 1},
		StudentT{Nu: 2, Loc: 0, Scale: 1},
		UniformMixture(Normal{Mu: 0, Sigma: 1}, Uniform{Lo: 0, Hi: 1}),
	}
	for _, d := range ds {
		a := d.Sample(rng.NewStream(0x123))
		b := d.Sample(rng.NewStream(0x123))
		if a != b {
			t.Fatalf("%T: same seed, different samples (%v vs %v)", d, a, b)
		}
	}
}
