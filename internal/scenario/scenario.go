// Package scenario implements scenario sets and the paper's α-summaries
// (§4.1) with the summary-selection machinery of §5: random partitioning
// into Z groups, greedy selection of the subset G_z(α) by scenario score
// (§5.3), and both memory-efficient generation orders of §5.5 (tuple-wise
// and scenario-wise summarization), which produce bit-identical results
// because realizations are pure functions of their (tuple, scenario)
// coordinates.
package scenario

import (
	"context"
	"math"
	"sort"
	"sync/atomic"

	"spq/internal/par"
	"spq/internal/relation"
	"spq/internal/rng"
)

// Direction selects the conservative extreme for a summary: for an inner
// constraint Σ a·x ≥ v the tuple-wise Min is conservative; for ≤ the Max is
// (Proposition 1 of the paper).
type Direction int

const (
	// Min takes tuple-wise minima over the chosen scenarios.
	Min Direction = iota
	// Max takes tuple-wise maxima.
	Max
)

func (d Direction) String() string {
	if d == Min {
		return "min"
	}
	return "max"
}

// Opposite returns the other direction (used by the convergence-acceleration
// trick of §5.5).
func (d Direction) Opposite() Direction {
	if d == Min {
		return Max
	}
	return Min
}

// Set is a materialized scenario set for one stochastic attribute: vals[j][i]
// is the realization of tuple i in the set's j-th scenario. IDs records the
// absolute scenario indices (so incrementally grown sets and their partitions
// keep stable identities across Naïve/SummarySearch iterations).
type Set struct {
	Attr string
	N    int
	IDs  []int
	vals [][]float64
}

// FromRows builds a Set directly from realized rows; rows[j][i] is the value
// of tuple i in the scenario with absolute index ids[j]. It is used by the
// translation layer to materialize scenario sets of inner-function values
// (linear combinations of several attributes) rather than single attributes.
func FromRows(attr string, ids []int, rows [][]float64) *Set {
	n := 0
	if len(rows) > 0 {
		n = len(rows[0])
	}
	return &Set{Attr: attr, N: n, IDs: append([]int(nil), ids...), vals: rows}
}

// AppendRow appends one realized scenario row with the given absolute index.
func (s *Set) AppendRow(id int, row []float64) {
	if s.N == 0 {
		s.N = len(row)
	}
	s.IDs = append(s.IDs, id)
	s.vals = append(s.vals, row)
}

// Generate materializes scenarios [first, first+m) of attribute attr from
// the relation under source src.
func Generate(src rng.Source, rel *relation.Relation, attr string, first, m int) (*Set, error) {
	s := &Set{Attr: attr, N: rel.N()}
	for j := 0; j < m; j++ {
		row := make([]float64, rel.N())
		if err := rel.Realize(src, attr, first+j, row); err != nil {
			return nil, err
		}
		s.IDs = append(s.IDs, first+j)
		s.vals = append(s.vals, row)
	}
	return s, nil
}

// Extend appends scenarios [next, next+m) where next is the current maximum
// absolute index + 1.
func (s *Set) Extend(src rng.Source, rel *relation.Relation, m int) error {
	next := 0
	if len(s.IDs) > 0 {
		next = s.IDs[len(s.IDs)-1] + 1
	}
	for j := 0; j < m; j++ {
		row := make([]float64, rel.N())
		if err := rel.Realize(src, s.Attr, next+j, row); err != nil {
			return err
		}
		s.IDs = append(s.IDs, next+j)
		s.vals = append(s.vals, row)
	}
	return nil
}

// M returns the number of scenarios in the set.
func (s *Set) M() int { return len(s.vals) }

// Value returns the realization of tuple i in the set's local scenario j.
func (s *Set) Value(i, j int) float64 { return s.vals[j][i] }

// Row returns the full realization vector of local scenario j. The returned
// slice is shared; callers must not modify it.
func (s *Set) Row(j int) []float64 { return s.vals[j] }

// Score computes the scenario score Σ_i s_ij·x_i of local scenario j for a
// sparse solution (§5.3). Only tuples with x_i ≠ 0 contribute.
func (s *Set) Score(j int, x []float64) float64 {
	row := s.vals[j]
	sum := 0.0
	for i, xi := range x {
		if xi != 0 {
			sum += row[i] * xi
		}
	}
	return sum
}

// PartitionIDs splits the scenario indices {0..m-1} into z near-equal random
// groups using a seeded shuffle, per §4.1 ("dividing S randomly into Z
// disjoint partitions"). The same (m, z, seed) yields the same partition.
// It depends only on the scenario count, not on realized values, which is
// what lets the streamed pipeline partition scenarios it never materialized.
func PartitionIDs(m, z int, seed uint64) [][]int {
	if z < 1 {
		z = 1
	}
	if z > m {
		z = m
	}
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	st := rng.NewStream(seed)
	for i := m - 1; i > 0; i-- {
		k := st.IntN(i + 1)
		perm[i], perm[k] = perm[k], perm[i]
	}
	parts := make([][]int, z)
	for i, idx := range perm {
		parts[i%z] = append(parts[i%z], idx)
	}
	return parts
}

// Partition splits the local scenario indices {0..M-1} into z near-equal
// random groups using a seeded shuffle, per §4.1. The same seed yields the
// same partition. It delegates to PartitionIDs.
func (s *Set) Partition(z int, seed uint64) [][]int {
	return PartitionIDs(s.M(), z, seed)
}

// GreedyPick returns the ⌈α·|part|⌉ local scenario indices of part whose
// scores under the previous solution x are most favourable (§5.3): for a ≥
// inner constraint (dir == Min) the highest-scoring scenarios keep x
// feasible, for ≤ (dir == Max) the lowest-scoring do.
// With x == nil (no previous solution), the first ⌈α·|part|⌉ scenarios of
// the partition are used.
func (s *Set) GreedyPick(part []int, alpha float64, dir Direction, x []float64) []int {
	var scores map[int]float64
	if x != nil {
		scores = make(map[int]float64, len(part))
		for _, j := range part {
			scores[j] = s.Score(j, x)
		}
	}
	return Pick(part, alpha, dir, scores)
}

// Pick is the selection step of GreedyPick factored out of the materialized
// Set: given precomputed scenario scores (nil when no previous solution
// exists), it returns the ⌈α·|part|⌉ most favourable indices of part under
// the same stable ordering GreedyPick uses. Streamed summarization computes
// scores from a cursor and calls Pick, so both paths order ties identically.
func Pick(part []int, alpha float64, dir Direction, scores map[int]float64) []int {
	n := int(math.Ceil(alpha * float64(len(part))))
	if n <= 0 {
		return nil
	}
	if n > len(part) {
		n = len(part)
	}
	chosen := append([]int(nil), part...)
	if scores != nil {
		sort.SliceStable(chosen, func(a, b int) bool {
			if dir == Min {
				return scores[chosen[a]] > scores[chosen[b]] // descending for ≥
			}
			return scores[chosen[a]] < scores[chosen[b]] // ascending for ≤
		})
	}
	return chosen[:n]
}

// Summary is an α-summary: a synthetic deterministic realization S̃ such
// that any solution satisfying S̃ satisfies at least ⌈α·M⌉ real scenarios
// of the summarized group (Definition 1 / Proposition 1).
type Summary struct {
	Attr   string
	Values []float64
	// Chosen records the local scenario indices the summary covers.
	Chosen []int
	// Dir and Accel record the fold inputs the summary was built with, so
	// PatchSummarize can recompute individual tuples after a delta without
	// re-deriving the per-tuple fold direction.
	Dir   Direction
	Accel []bool
}

// Summarize builds the α-summary of the chosen scenarios by taking the
// tuple-wise extreme in direction dir. If accel is non-nil, tuples with
// accel[i] == true use the opposite extreme — the §5.5 convergence
// acceleration that keeps the previous solution's tuples feasible at the
// cost of the conservativeness guarantee on those tuples.
func (s *Set) Summarize(chosen []int, dir Direction, accel []bool) *Summary {
	out := &Summary{Attr: s.Attr, Values: make([]float64, s.N), Chosen: append([]int(nil), chosen...), Dir: dir, Accel: cloneAccel(accel)}
	for i := 0; i < s.N; i++ {
		d := dir
		if accel != nil && accel[i] {
			d = d.Opposite()
		}
		v := s.vals[chosen[0]][i]
		for _, j := range chosen[1:] {
			w := s.vals[j][i]
			if (d == Min && w < v) || (d == Max && w > v) {
				v = w
			}
		}
		out.Values[i] = v
	}
	return out
}

// SummarizeP is Summarize with the tuple loop sharded across workers. Each
// tuple's extreme is computed independently, so the summary is identical to
// the sequential one for any worker count.
func (s *Set) SummarizeP(ctx context.Context, chosen []int, dir Direction, accel []bool, workers int) (*Summary, error) {
	out := &Summary{Attr: s.Attr, Values: make([]float64, s.N), Chosen: append([]int(nil), chosen...), Dir: dir, Accel: cloneAccel(accel)}
	err := par.Ranges(ctx, s.N, workers, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			d := dir
			if accel != nil && accel[i] {
				d = d.Opposite()
			}
			v := s.vals[chosen[0]][i]
			for _, j := range chosen[1:] {
				w := s.vals[j][i]
				if (d == Min && w < v) || (d == Max && w > v) {
					v = w
				}
			}
			out.Values[i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func cloneAccel(accel []bool) []bool {
	if accel == nil {
		return nil
	}
	return append([]bool(nil), accel...)
}

// Package-level summary-patch counters (exported through PatchCounters):
// after a delta, warm re-solves recompute only the touched tuples of each
// retained summary instead of re-folding all N×M values.
var (
	patchTuplesRecomputed atomic.Int64
	patchTuplesReused     atomic.Int64
)

// PatchCounters returns the cumulative number of summary tuples recomputed
// by patching versus carried over unchanged.
func PatchCounters() (recomputed, reused int64) {
	return patchTuplesRecomputed.Load(), patchTuplesReused.Load()
}

// PatchSummarize re-derives the summary values of only the touched tuples
// against this set's (post-delta) realizations, reusing every other tuple
// of prev unchanged. Because scenario realizations are pure per-coordinate
// functions, untouched tuples realize identically before and after a delta
// that did not reach their inputs — so the patched summary is bit-identical
// to a full re-summarization at k×M instead of N×M cost.
func (s *Set) PatchSummarize(prev *Summary, touched []int) *Summary {
	out := &Summary{
		Attr:   prev.Attr,
		Values: append([]float64(nil), prev.Values...),
		Chosen: prev.Chosen,
		Dir:    prev.Dir,
		Accel:  prev.Accel,
	}
	for _, i := range touched {
		d := prev.Dir
		if prev.Accel != nil && prev.Accel[i] {
			d = d.Opposite()
		}
		v := s.vals[prev.Chosen[0]][i]
		for _, j := range prev.Chosen[1:] {
			w := s.vals[j][i]
			if (d == Min && w < v) || (d == Max && w > v) {
				v = w
			}
		}
		out.Values[i] = v
	}
	patchTuplesRecomputed.Add(int64(len(touched)))
	patchTuplesReused.Add(int64(s.N - len(touched)))
	return out
}

// SatisfiedBy counts how many of the chosen scenarios a solution satisfies
// for the inner constraint Σ a·x ⊙ v; it is the test-side check of the
// α-summary guarantee.
func (s *Set) SatisfiedBy(x []float64, chosen []int, geq bool, v float64) int {
	count := 0
	for _, j := range chosen {
		score := s.Score(j, x)
		if (geq && score >= v) || (!geq && score <= v) {
			count++
		}
	}
	return count
}
