package scenario

import (
	"context"
	"testing"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
)

func parallelTestRelation(t *testing.T, n int) *relation.Relation {
	t.Helper()
	rel := relation.New("r", n)
	dists := make([]dist.Dist, n)
	for i := range dists {
		dists[i] = dist.Normal{Mu: float64(i % 7), Sigma: 1 + float64(i%3)}
	}
	if err := rel.AddStoch("v", &relation.IndependentVG{AttrID: 4, Dists: dists}); err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestSummarizePMatchesSequential(t *testing.T) {
	rel := parallelTestRelation(t, 37)
	src := rng.NewSource(11)
	set, err := Generate(src, rel, "v", 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	chosen := []int{0, 3, 7, 11, 19}
	accel := make([]bool, rel.N())
	for i := range accel {
		accel[i] = i%5 == 0
	}
	for _, dir := range []Direction{Min, Max} {
		want := set.Summarize(chosen, dir, accel)
		for _, workers := range []int{1, 2, 8, -1} {
			got, err := set.SummarizeP(context.Background(), chosen, dir, accel, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Values {
				if got.Values[i] != want.Values[i] {
					t.Fatalf("dir=%v workers=%d: value[%d] = %v, want %v",
						dir, workers, i, got.Values[i], want.Values[i])
				}
			}
		}
	}
}

// TestStreamingSummaryPBothStrategies asserts the §5.5 guarantee under
// parallelism: tuple-wise and scenario-wise parallel summarization are
// bit-identical to the sequential paths — and to each other — for any
// worker count.
func TestStreamingSummaryPBothStrategies(t *testing.T) {
	rel := parallelTestRelation(t, 29)
	src := rng.NewSource(5)
	chosen := []int{2, 5, 8, 13, 21, 34}
	for _, dir := range []Direction{Min, Max} {
		want, err := StreamingSummary(src, rel, "v", chosen, dir, nil, TupleWise)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []Strategy{TupleWise, ScenarioWise} {
			for _, workers := range []int{1, 2, 4, 16} {
				got, err := StreamingSummaryP(context.Background(), src, rel, "v", chosen, dir, nil, strat, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.Values {
					if got.Values[i] != want.Values[i] {
						t.Fatalf("%v dir=%v workers=%d: value[%d] = %v, want %v",
							strat, dir, workers, i, got.Values[i], want.Values[i])
					}
				}
			}
		}
	}
}

func TestStreamingSummaryPCancelled(t *testing.T) {
	rel := parallelTestRelation(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := StreamingSummaryP(ctx, rng.NewSource(1), rel, "v", []int{0, 1}, Min, nil, ScenarioWise, 2); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
