package scenario

import (
	"math"
	"testing"
	"testing/quick"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
)

func testRelation(t *testing.T, n int) *relation.Relation {
	t.Helper()
	r := relation.New("t", n)
	if err := r.AddStoch("gain", &relation.IndependentVG{
		AttrID: 1,
		Dists:  []dist.Dist{dist.Normal{Mu: 0, Sigma: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	rel := testRelation(t, 8)
	src := rng.NewSource(1)
	s1, err := Generate(src, rel, "gain", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s1.M() != 5 || s1.N != 8 {
		t.Fatalf("M=%d N=%d, want 5, 8", s1.M(), s1.N)
	}
	s2, _ := Generate(src, rel, "gain", 0, 5)
	for j := 0; j < 5; j++ {
		for i := 0; i < 8; i++ {
			if s1.Value(i, j) != s2.Value(i, j) {
				t.Fatal("regeneration differs")
			}
		}
	}
}

func TestExtendContinuesScenarioIDs(t *testing.T) {
	rel := testRelation(t, 4)
	src := rng.NewSource(2)
	s, _ := Generate(src, rel, "gain", 0, 3)
	if err := s.Extend(src, rel, 2); err != nil {
		t.Fatal(err)
	}
	if s.M() != 5 {
		t.Fatalf("M = %d, want 5", s.M())
	}
	wantIDs := []int{0, 1, 2, 3, 4}
	for k, id := range s.IDs {
		if id != wantIDs[k] {
			t.Fatalf("IDs = %v", s.IDs)
		}
	}
	// Extended scenarios must match direct generation of the same indices.
	direct, _ := Generate(src, rel, "gain", 3, 2)
	for i := 0; i < 4; i++ {
		if s.Value(i, 3) != direct.Value(i, 0) {
			t.Fatal("extension differs from direct generation")
		}
	}
}

func TestScoreSparse(t *testing.T) {
	rel := testRelation(t, 5)
	s, _ := Generate(rng.NewSource(3), rel, "gain", 0, 2)
	x := []float64{0, 2, 0, 1, 0}
	want := 2*s.Value(1, 0) + s.Value(3, 0)
	if got := s.Score(0, x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score = %v, want %v", got, want)
	}
}

func TestPartitionProperties(t *testing.T) {
	rel := testRelation(t, 3)
	s, _ := Generate(rng.NewSource(4), rel, "gain", 0, 10)
	parts := s.Partition(3, 42)
	if len(parts) != 3 {
		t.Fatalf("got %d partitions", len(parts))
	}
	seen := map[int]bool{}
	total := 0
	for _, p := range parts {
		if len(p) < 3 || len(p) > 4 {
			t.Fatalf("partition size %d not near-equal for 10/3", len(p))
		}
		for _, j := range p {
			if seen[j] {
				t.Fatalf("scenario %d in two partitions", j)
			}
			seen[j] = true
			total++
		}
	}
	if total != 10 {
		t.Fatalf("partitions cover %d scenarios, want 10", total)
	}
	// Determinism.
	again := s.Partition(3, 42)
	for z := range parts {
		for k := range parts[z] {
			if parts[z][k] != again[z][k] {
				t.Fatal("partition not deterministic for fixed seed")
			}
		}
	}
}

func TestPartitionClamps(t *testing.T) {
	rel := testRelation(t, 2)
	s, _ := Generate(rng.NewSource(5), rel, "gain", 0, 3)
	if got := len(s.Partition(0, 1)); got != 1 {
		t.Fatalf("z=0 gave %d partitions, want 1", got)
	}
	if got := len(s.Partition(10, 1)); got != 3 {
		t.Fatalf("z=10 gave %d partitions, want 3 (=M)", got)
	}
}

func TestGreedyPickOrdering(t *testing.T) {
	rel := testRelation(t, 3)
	s, _ := Generate(rng.NewSource(6), rel, "gain", 0, 6)
	x := []float64{1, 1, 1}
	part := []int{0, 1, 2, 3, 4, 5}
	picked := s.GreedyPick(part, 0.5, Min, x) // ⌈3⌉ highest-scoring for ≥
	if len(picked) != 3 {
		t.Fatalf("picked %d, want 3", len(picked))
	}
	minPicked := math.Inf(1)
	for _, j := range picked {
		if sc := s.Score(j, x); sc < minPicked {
			minPicked = sc
		}
	}
	for _, j := range part {
		inPicked := false
		for _, p := range picked {
			if p == j {
				inPicked = true
			}
		}
		if !inPicked && s.Score(j, x) > minPicked+1e-12 {
			t.Fatalf("unpicked scenario %d has higher score than picked minimum", j)
		}
	}
	// Max direction picks lowest scores.
	pickedMax := s.GreedyPick(part, 0.5, Max, x)
	maxPicked := math.Inf(-1)
	for _, j := range pickedMax {
		if sc := s.Score(j, x); sc > maxPicked {
			maxPicked = sc
		}
	}
	for _, j := range part {
		inPicked := false
		for _, p := range pickedMax {
			if p == j {
				inPicked = true
			}
		}
		if !inPicked && s.Score(j, x) < maxPicked-1e-12 {
			t.Fatalf("unpicked scenario %d has lower score than picked maximum (≤ direction)", j)
		}
	}
}

func TestGreedyPickEdgeCases(t *testing.T) {
	rel := testRelation(t, 2)
	s, _ := Generate(rng.NewSource(7), rel, "gain", 0, 4)
	part := []int{0, 1, 2, 3}
	if got := s.GreedyPick(part, 0, Min, nil); got != nil {
		t.Fatalf("alpha=0 should pick nothing, got %v", got)
	}
	if got := s.GreedyPick(part, 1, Min, nil); len(got) != 4 {
		t.Fatalf("alpha=1 should pick all, got %v", got)
	}
	if got := s.GreedyPick(part, 2, Min, nil); len(got) != 4 {
		t.Fatalf("alpha>1 should clamp to all, got %v", got)
	}
	if got := s.GreedyPick(part, 0.25, Min, nil); len(got) != 1 {
		t.Fatalf("alpha=0.25 of 4 should pick 1, got %v", got)
	}
}

func TestSummarizeIsTupleWiseExtreme(t *testing.T) {
	rel := testRelation(t, 6)
	s, _ := Generate(rng.NewSource(8), rel, "gain", 0, 5)
	chosen := []int{0, 2, 4}
	sm := s.Summarize(chosen, Min, nil)
	for i := 0; i < 6; i++ {
		want := math.Inf(1)
		for _, j := range chosen {
			want = math.Min(want, s.Value(i, j))
		}
		if sm.Values[i] != want {
			t.Fatalf("summary[%d] = %v, want %v", i, sm.Values[i], want)
		}
	}
	smMax := s.Summarize(chosen, Max, nil)
	for i := 0; i < 6; i++ {
		if smMax.Values[i] < sm.Values[i] {
			t.Fatal("max summary below min summary")
		}
	}
}

func TestSummarizeAcceleration(t *testing.T) {
	rel := testRelation(t, 4)
	s, _ := Generate(rng.NewSource(9), rel, "gain", 0, 5)
	chosen := []int{0, 1, 2}
	accel := []bool{true, false, false, false}
	sm := s.Summarize(chosen, Min, accel)
	// Tuple 0 uses MAX (accelerated), others MIN.
	want0 := math.Inf(-1)
	for _, j := range chosen {
		want0 = math.Max(want0, s.Value(0, j))
	}
	if sm.Values[0] != want0 {
		t.Fatalf("accelerated tuple 0 = %v, want max %v", sm.Values[0], want0)
	}
	want1 := math.Inf(1)
	for _, j := range chosen {
		want1 = math.Min(want1, s.Value(1, j))
	}
	if sm.Values[1] != want1 {
		t.Fatalf("non-accelerated tuple 1 = %v, want min %v", sm.Values[1], want1)
	}
}

// Property (Proposition 1): any solution satisfying a min-summary with ≥
// satisfies every chosen scenario. This is the core conservativeness
// guarantee SummarySearch relies on.
func TestAlphaSummaryGuaranteeProperty(t *testing.T) {
	rel := testRelation(t, 10)
	s, _ := Generate(rng.NewSource(10), rel, "gain", 0, 20)
	f := func(seed uint64, rawV int8) bool {
		st := rng.NewStream(seed)
		// Random sparse nonnegative integer solution.
		x := make([]float64, 10)
		for i := range x {
			if st.IntN(3) == 0 {
				x[i] = float64(st.IntN(4))
			}
		}
		chosen := []int{st.IntN(20), st.IntN(20), st.IntN(20)}
		sm := s.Summarize(chosen, Min, nil)
		// Summary score.
		score := 0.0
		for i := range x {
			score += sm.Values[i] * x[i]
		}
		v := float64(rawV) / 4
		if score >= v {
			// x satisfies the summary ⇒ must satisfy all chosen scenarios.
			return s.SatisfiedBy(x, chosen, true, v) == len(chosen)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaSummaryGuaranteeMaxDirection(t *testing.T) {
	rel := testRelation(t, 8)
	s, _ := Generate(rng.NewSource(11), rel, "gain", 0, 12)
	f := func(seed uint64, rawV int8) bool {
		st := rng.NewStream(seed)
		x := make([]float64, 8)
		for i := range x {
			x[i] = float64(st.IntN(3))
		}
		chosen := []int{st.IntN(12), st.IntN(12)}
		sm := s.Summarize(chosen, Max, nil)
		score := 0.0
		for i := range x {
			score += sm.Values[i] * x[i]
		}
		v := float64(rawV) / 4
		if score <= v {
			return s.SatisfiedBy(x, chosen, false, v) == len(chosen)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingScoresMatchMaterialized(t *testing.T) {
	rel := testRelation(t, 12)
	src := rng.NewSource(12)
	s, _ := Generate(src, rel, "gain", 0, 9)
	x := []float64{1, 0, 2, 0, 0, 3, 0, 0, 0, 1, 0, 0}
	for _, strat := range []Strategy{TupleWise, ScenarioWise} {
		scores, err := StreamingScores(src, rel, "gain", x, s.IDs, strat)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < s.M(); j++ {
			if math.Abs(scores[j]-s.Score(j, x)) > 1e-12 {
				t.Fatalf("%v scores[%d] = %v, want %v", strat, j, scores[j], s.Score(j, x))
			}
		}
	}
}

func TestStreamingSummaryMatchesMaterialized(t *testing.T) {
	rel := testRelation(t, 7)
	src := rng.NewSource(13)
	s, _ := Generate(src, rel, "gain", 0, 8)
	chosen := []int{1, 3, 6}
	accel := []bool{false, true, false, false, true, false, false}
	want := s.Summarize(chosen, Min, accel)
	for _, strat := range []Strategy{TupleWise, ScenarioWise} {
		got, err := StreamingSummary(src, rel, "gain", chosen, Min, accel, strat)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("%v summary[%d] = %v, want %v", strat, i, got.Values[i], want.Values[i])
			}
		}
	}
}

// Property (§5.5): tuple-wise and scenario-wise strategies are
// observationally identical for any chosen subset and direction.
func TestStrategiesEquivalentProperty(t *testing.T) {
	rel := testRelation(t, 9)
	src := rng.NewSource(14)
	f := func(seed uint64, dirRaw bool) bool {
		st := rng.NewStream(seed)
		k := 1 + st.IntN(4)
		chosen := make([]int, k)
		for i := range chosen {
			chosen[i] = st.IntN(30)
		}
		dir := Min
		if dirRaw {
			dir = Max
		}
		a, err1 := StreamingSummary(src, rel, "gain", chosen, dir, nil, TupleWise)
		b, err2 := StreamingSummary(src, rel, "gain", chosen, dir, nil, ScenarioWise)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionHelpers(t *testing.T) {
	if Min.Opposite() != Max || Max.Opposite() != Min {
		t.Fatal("Opposite wrong")
	}
	if Min.String() != "min" || Max.String() != "max" {
		t.Fatal("String wrong")
	}
	if TupleWise.String() != "tuple-wise" || ScenarioWise.String() != "scenario-wise" {
		t.Fatal("Strategy.String wrong")
	}
}

func TestSatisfiedByCounts(t *testing.T) {
	rel := relation.New("d", 2)
	_ = rel.AddDet("a", []float64{1, 2}) // deterministic: all scenarios equal
	src := rng.NewSource(15)
	s, err := Generate(src, rel, "a", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1} // score = 3 in every scenario
	if got := s.SatisfiedBy(x, []int{0, 1, 2, 3}, true, 3); got != 4 {
		t.Fatalf("≥3 satisfied = %d, want 4", got)
	}
	if got := s.SatisfiedBy(x, []int{0, 1, 2, 3}, true, 3.5); got != 0 {
		t.Fatalf("≥3.5 satisfied = %d, want 0", got)
	}
	if got := s.SatisfiedBy(x, []int{0, 1}, false, 3); got != 2 {
		t.Fatalf("≤3 satisfied = %d, want 2", got)
	}
}
