package scenario

import (
	"context"

	"spq/internal/par"
	"spq/internal/relation"
	"spq/internal/rng"
)

// Strategy selects the §5.5 memory-efficient generation order for scores and
// summaries when scenario sets are not materialized. Both strategies observe
// identical realizations (coordinate-pure VG functions); they differ only in
// time/memory trade-offs: tuple-wise is Θ(M(P+N)) time and favours small
// tables, scenario-wise is Θ(NM(α+1)) and favours large tables.
type Strategy int

const (
	// TupleWise iterates tuples in the outer loop, generating each tuple's
	// realizations across scenarios.
	TupleWise Strategy = iota
	// ScenarioWise iterates scenarios in the outer loop, generating whole
	// rows.
	ScenarioWise
)

func (s Strategy) String() string {
	if s == TupleWise {
		return "tuple-wise"
	}
	return "scenario-wise"
}

// StreamingScores computes the scenario scores Σ_i s_ij·x_i for the given
// absolute scenario IDs directly from the relation's VG functions, without a
// materialized Set. Only tuples with x_i ≠ 0 are realized (the package is
// typically much smaller than the relation, §5.5).
func StreamingScores(src rng.Source, rel *relation.Relation, attr string, x []float64, scenIDs []int, strat Strategy) ([]float64, error) {
	scores := make([]float64, len(scenIDs))
	var pkg []int
	for i, xi := range x {
		if xi != 0 {
			pkg = append(pkg, i)
		}
	}
	switch strat {
	case TupleWise:
		for _, i := range pkg {
			for jj, id := range scenIDs {
				v, err := rel.Value(src, attr, i, id)
				if err != nil {
					return nil, err
				}
				scores[jj] += v * x[i]
			}
		}
	default: // ScenarioWise
		for jj, id := range scenIDs {
			sum := 0.0
			for _, i := range pkg {
				v, err := rel.Value(src, attr, i, id)
				if err != nil {
					return nil, err
				}
				sum += v * x[i]
			}
			scores[jj] = sum
		}
	}
	return scores, nil
}

// StreamingSummaryP is StreamingSummary with the generation order's outer
// loop sharded across workers: TupleWise shards the tuple loop (each
// tuple's extreme is independent), ScenarioWise shards the chosen scenarios
// and merges the per-shard extremes. min/max merging is exact and
// order-independent, so both strategies stay bit-identical to the
// sequential path — and to each other — for any worker count. Like its
// sequential twin it serves callers that summarize without materialized
// sets (benchmarks, future out-of-core paths); the optimize loop itself
// summarizes materialized sets via Set.SummarizeP.
func StreamingSummaryP(ctx context.Context, src rng.Source, rel *relation.Relation, attr string, chosenIDs []int, dir Direction, accel []bool, strat Strategy, workers int) (*Summary, error) {
	n := rel.N()
	out := &Summary{Attr: attr, Values: make([]float64, n), Chosen: append([]int(nil), chosenIDs...)}
	dirFor := func(i int) Direction {
		if accel != nil && accel[i] {
			return dir.Opposite()
		}
		return dir
	}
	switch strat {
	case TupleWise:
		err := par.Ranges(ctx, n, workers, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				d := dirFor(i)
				var acc float64
				for k, id := range chosenIDs {
					v, err := rel.Value(src, attr, i, id)
					if err != nil {
						return err
					}
					if k == 0 || (d == Min && v < acc) || (d == Max && v > acc) {
						acc = v
					}
				}
				out.Values[i] = acc
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	default: // ScenarioWise
		w := par.Workers(workers, len(chosenIDs))
		partials := make([][]float64, w)
		err := par.Ranges(ctx, len(chosenIDs), w, func(shard, lo, hi int) error {
			vals := make([]float64, n)
			row := make([]float64, n)
			for k := lo; k < hi; k++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := rel.Realize(src, attr, chosenIDs[k], row); err != nil {
					return err
				}
				if k == lo {
					copy(vals, row)
					continue
				}
				for i := 0; i < n; i++ {
					d := dirFor(i)
					if (d == Min && row[i] < vals[i]) || (d == Max && row[i] > vals[i]) {
						vals[i] = row[i]
					}
				}
			}
			partials[shard] = vals
			return nil
		})
		if err != nil {
			return nil, err
		}
		first := true
		for _, vals := range partials {
			if vals == nil {
				continue
			}
			if first {
				copy(out.Values, vals)
				first = false
				continue
			}
			for i := 0; i < n; i++ {
				d := dirFor(i)
				if (d == Min && vals[i] < out.Values[i]) || (d == Max && vals[i] > out.Values[i]) {
					out.Values[i] = vals[i]
				}
			}
		}
	}
	return out, nil
}

// StreamingSummary computes the tuple-wise extreme of the chosen absolute
// scenario IDs directly from the relation's VG functions, in Θ(N) memory.
// accel has the same meaning as in Set.Summarize.
func StreamingSummary(src rng.Source, rel *relation.Relation, attr string, chosenIDs []int, dir Direction, accel []bool, strat Strategy) (*Summary, error) {
	n := rel.N()
	out := &Summary{Attr: attr, Values: make([]float64, n), Chosen: append([]int(nil), chosenIDs...)}
	dirFor := func(i int) Direction {
		if accel != nil && accel[i] {
			return dir.Opposite()
		}
		return dir
	}
	switch strat {
	case TupleWise:
		for i := 0; i < n; i++ {
			d := dirFor(i)
			var acc float64
			for k, id := range chosenIDs {
				v, err := rel.Value(src, attr, i, id)
				if err != nil {
					return nil, err
				}
				if k == 0 || (d == Min && v < acc) || (d == Max && v > acc) {
					acc = v
				}
			}
			out.Values[i] = acc
		}
	default: // ScenarioWise
		row := make([]float64, n)
		for k, id := range chosenIDs {
			if err := rel.Realize(src, attr, id, row); err != nil {
				return nil, err
			}
			if k == 0 {
				copy(out.Values, row)
				continue
			}
			for i := 0; i < n; i++ {
				d := dirFor(i)
				if (d == Min && row[i] < out.Values[i]) || (d == Max && row[i] > out.Values[i]) {
					out.Values[i] = row[i]
				}
			}
		}
	}
	return out, nil
}
