package remote

import (
	"fmt"
	"math"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/milp"
	"spq/internal/translate"
)

// This file is the lossless (up to wall-clock timings) mapping between
// core.Solution and the v1 wire's raw SolveResult, shared by both ends of a
// sub-solve dispatch: the worker-side engine renders its solution with
// ToWireSolution, the coordinator-side Solver reconstructs it with
// FromWireSolution, and the replicated result cache ships the same payload
// between peers. Float64 fields round-trip exactly through encoding/json
// (Go emits the shortest representation that parses back to the same bits),
// which is what makes remote solving bit-identical to local.

// ToWireSolution renders a solution as the raw v1 payload.
func ToWireSolution(sol *core.Solution) *client.SolveResult {
	out := &client.SolveResult{
		Feasible:      sol.Feasible,
		Objective:     sol.Objective,
		Surpluses:     sol.Surpluses,
		SurplusCIHalf: sol.SurplusCIHalf,
		M:             sol.M,
		Z:             sol.Z,
		X:             sol.X,
		MILPSolves:    sol.MILPSolves,
		MILPNodes:     sol.MILPNodes,
		MILPWorkers:   sol.MILPWorkers,
		LPIters:       sol.LPIters,
		WarmStarts:    sol.WarmStarts,
		DegenPivots:   sol.DegenPivots,
		PresolveRows:  sol.PresolveRows,
		PresolveCols:  sol.PresolveCols,
		TotalMS:       sol.TotalTime.Milliseconds(),
	}
	if math.IsInf(sol.EpsUpper, 1) {
		out.EpsUpperInf = true
	} else if !math.IsNaN(sol.EpsUpper) {
		out.EpsUpper = sol.EpsUpper
	}
	for _, it := range sol.Iterations {
		out.Iterations = append(out.Iterations, client.SolveIteration{
			M:            it.M,
			Z:            it.Z,
			Status:       int(it.SolverStatus),
			Coefficients: it.Coefficients,
			Nodes:        it.Nodes,
			LPIters:      it.LPIters,
			WarmStarts:   it.WarmStarts,
			DegenPivots:  it.DegenPivots,
			PresolveRows: it.PresolveRows,
			PresolveCols: it.PresolveCols,
			Feasible:     it.Feasible,
			Objective:    it.Objective,
		})
	}
	return out
}

// FromWireSolution reconstructs a core.Solution from the raw payload. n is
// the expected length of X (the solved view's row count); a mismatched
// package is a protocol error, not something to guess around. Per-iteration
// wall-clock timings are not carried (they are observational, not part of
// the deterministic result), so the rebuilt history has zero durations;
// TotalTime reports the worker's wall clock.
func FromWireSolution(sr *client.SolveResult, n int) (*core.Solution, error) {
	if sr == nil {
		return nil, fmt.Errorf("remote: missing raw solution payload")
	}
	if sr.X != nil && len(sr.X) != n {
		return nil, fmt.Errorf("remote: raw solution has %d multiplicities, want %d", len(sr.X), n)
	}
	sol := &core.Solution{
		X:             sr.X,
		Feasible:      sr.Feasible,
		Objective:     sr.Objective,
		EpsUpper:      sr.EpsUpper,
		Surpluses:     sr.Surpluses,
		SurplusCIHalf: sr.SurplusCIHalf,
		M:             sr.M,
		Z:             sr.Z,
		MILPSolves:    sr.MILPSolves,
		MILPNodes:     sr.MILPNodes,
		MILPWorkers:   sr.MILPWorkers,
		LPIters:       sr.LPIters,
		WarmStarts:    sr.WarmStarts,
		DegenPivots:   sr.DegenPivots,
		PresolveRows:  sr.PresolveRows,
		PresolveCols:  sr.PresolveCols,
		TotalTime:     msToDuration(sr.TotalMS),
	}
	if sr.EpsUpperInf {
		sol.EpsUpper = math.Inf(1)
	}
	for _, it := range sr.Iterations {
		sol.Iterations = append(sol.Iterations, core.Iteration{
			M:            it.M,
			Z:            it.Z,
			SolverStatus: milp.Status(it.Status),
			Coefficients: it.Coefficients,
			Nodes:        it.Nodes,
			LPIters:      it.LPIters,
			WarmStarts:   it.WarmStarts,
			DegenPivots:  it.DegenPivots,
			PresolveRows: it.PresolveRows,
			PresolveCols: it.PresolveCols,
			Feasible:     it.Feasible,
			Objective:    it.Objective,
		})
	}
	return sol, nil
}

// ToWireOptions maps the result-relevant evaluation options onto the v1
// request type. Parallelism is deliberately dropped: it is bit-identical by
// construction, and the worker should size its own pools for its own
// hardware. Progress is a callback and cannot travel; the dispatch streams
// the worker's progress events back instead. An infinite Epsilon maps to the
// zero value, which defaults back to +Inf on the worker.
func ToWireOptions(opts *core.Options) *client.SolveOptions {
	if opts == nil {
		return nil
	}
	out := &client.SolveOptions{
		Seed:                opts.Seed,
		ValidationSeed:      opts.ValidationSeed,
		ValidationM:         opts.ValidationM,
		InitialM:            opts.InitialM,
		IncrementM:          opts.IncrementM,
		MaxM:                opts.MaxM,
		FixedZ:              opts.FixedZ,
		IncrementZ:          opts.IncrementZ,
		MaxCSAIters:         opts.MaxCSAIters,
		DisableAcceleration: opts.DisableAcceleration,
		TimeLimitMS:         opts.TimeLimit.Milliseconds(),
		SolverTimeMS:        opts.SolverTime.Milliseconds(),
		SolverNodes:         opts.SolverNodes,
		RelGap:              opts.RelGap,
	}
	if !math.IsInf(opts.Epsilon, 0) {
		out.Epsilon = opts.Epsilon
	}
	return out
}

// SolveSpecFor renders the problem's view and variable bounds as the wire
// spec a worker needs to rebuild it: the view's base-relation tuple indices
// (strictly ascending by construction — Select preserves order and
// OrigIndex composes through nested views) plus the problem's current
// bounds, which carry any post-translation mutation (the sketch phase's
// medoid-capacity inflation).
func SolveSpecFor(silp *translate.SILP) *client.SolveSpec {
	n := silp.Rel.N()
	spec := &client.SolveSpec{
		Subset: make([]int, n),
		VarHi:  append([]float64(nil), silp.VarHi...),
		VarLo:  append([]float64(nil), silp.VarLo...),
	}
	for i := 0; i < n; i++ {
		spec.Subset[i] = silp.Rel.OrigIndex(i)
	}
	return spec
}

// SubKey is the node-independent key of one sub-solve: canonical query text
// ⊕ canonical options ⊕ canonical solve spec. Every process holding the
// same relation derives the same key for the same sub-problem, which is why
// it can drive both rendezvous worker assignment (this package) and the
// shared result cache (the worker's engine composes the same parts into its
// cache key).
func SubKey(silp *translate.SILP, opts *core.Options, spec *client.SolveSpec) string {
	return silp.Query.String() + "\x1f" + opts.Key() + "\x1f" + spec.Key()
}

func msToDuration(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }
