// Package remote implements core.Solver over the v1 HTTP API: a Solver
// that ships sub-problems to a pool of worker spqd daemons as ordinary
// async jobs, turning the sketch pipeline's shard fan-out (and any direct
// method="remote" query) into multi-node scale-out.
//
// The design leans entirely on two properties earlier layers already
// guarantee:
//
//   - Evaluation is a pure function of (query, options, relation). A worker
//     holding the same relation — spqd fleets load workloads from shared
//     seeds — that rebuilds the coordinator's exact sub-problem returns the
//     bit-identical solution the coordinator would have computed locally.
//     The wire carries the full determinism domain: canonical query text,
//     every result-relevant option (client.SolveOptions), and a
//     client.SolveSpec naming the view's base-relation tuple subset plus
//     the post-translation variable-bound overrides.
//   - Because remote ≡ local, failure handling is trivial: any dispatch
//     failure falls back to the local solver and the answer cannot change.
//     Worker loss degrades throughput, never correctness.
//
// Dispatch is deterministic too: each sub-problem's node-independent key
// (SubKey — canonical query ⊕ options ⊕ spec) is rendezvous-hashed over the
// healthy workers, so a fleet of coordinators sends identical sub-problems
// to the same worker, where its result cache answers repeats without
// solving. Failing workers enter exponential backoff and their share
// redistributes; a bounded in-flight semaphore keeps a wide shard fan-out
// from opening unbounded connections. Streamed worker progress events are
// forwarded into core.Options.Progress (phase labels are applied by the
// caller, e.g. the sketch pipeline's "sketch/shard<i>" wrapper), so a
// coordinator job's observers see remote sub-solves exactly like local
// ones.
//
// New constructs the solver; registering it under SolverByName("remote")
// is the caller's choice (cmd/spqd does it when -workers is set).
package remote

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/obs"
	"spq/internal/translate"
)

// Options configure a Solver.
type Options struct {
	// Workers are the base URLs of the worker spqd daemons (e.g.
	// "http://w1:8723"). Empty means every Solve runs locally — a pool of
	// zero is the identity configuration.
	Workers []string
	// Local evaluates sub-problems when no worker can (pool empty, all
	// workers down, dispatch failure) — and is the reference the remote
	// path must match bit-for-bit. Default core.SummarySearchSolver.
	Local core.Solver
	// Inner is the method workers run ("" = summarysearch). It must be a
	// method the workers resolve locally; dispatching "remote" to a worker
	// that registered its own remote solver is rejected by New to keep
	// topologies acyclic.
	Inner string
	// MaxInFlight bounds concurrent remote dispatches across all workers
	// (default 4 per worker). Excess sub-solves wait for a slot.
	MaxInFlight int
	// NoFallback disables the default failure handling (re-solving locally
	// after a worker failure): when set, the worker's error surfaces with
	// its stable code preserved — fail-fast for operators who would rather
	// see the fleet problem than burn coordinator CPU.
	NoFallback bool
	// FailureBackoff is the initial per-worker backoff after a failure,
	// doubling per consecutive failure up to MaxBackoff (defaults 2s / 60s).
	FailureBackoff time.Duration
	MaxBackoff     time.Duration
	// HTTPClient overrides the transport (tests, timeouts).
	HTTPClient *http.Client
	// Logf, when non-nil, receives one line per worker state change and
	// fallback (e.g. log.Printf).
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the solver's counters; the engine
// folds it into GET /stats.
type Stats struct {
	// Dispatched counts sub-solves sent to workers (successful or not);
	// Fallbacks counts local re-solves (dispatch failure, no healthy
	// worker, or an empty pool does not count); Failures counts observed
	// worker dispatch failures.
	Dispatched int64
	Fallbacks  int64
	Failures   int64
	// WorkersDown is the number of workers currently in failure backoff.
	WorkersDown int
}

// worker is one pool member with its health state (guarded by Solver.mu).
type worker struct {
	url    string
	client *client.Client

	fails     int
	downUntil time.Time
}

// Solver dispatches sub-problems to worker spqds; it implements
// core.Solver and is safe for concurrent use (one value is shared by every
// shard of a sketch fan-out).
type Solver struct {
	opts    Options
	local   core.Solver
	workers []*worker
	sem     chan struct{}

	mu sync.Mutex // guards worker health state

	dispatched atomic.Int64
	fallbacks  atomic.Int64
	failures   atomic.Int64
}

// New builds a Solver. An empty worker list is valid (pure-local identity
// configuration).
func New(o Options) (*Solver, error) {
	if o.Local == nil {
		o.Local = core.SummarySearchSolver
	}
	if o.Inner == "remote" {
		return nil, errors.New("remote: inner method cannot be \"remote\" (acyclic topologies only)")
	}
	if o.FailureBackoff <= 0 {
		o.FailureBackoff = 2 * time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 60 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4 * len(o.Workers)
		if o.MaxInFlight == 0 {
			o.MaxInFlight = 1
		}
	}
	s := &Solver{opts: o, local: o.Local, sem: make(chan struct{}, o.MaxInFlight)}
	copts := []client.Option{}
	if o.HTTPClient != nil {
		copts = append(copts, client.WithHTTPClient(o.HTTPClient))
	}
	// Short poll interval: sub-solves are small and shard merges wait on
	// the slowest one, so snappy terminal detection matters more than a few
	// extra long-poll round trips.
	copts = append(copts, client.WithPollInterval(500*time.Millisecond))
	for _, u := range o.Workers {
		c, err := client.New(u, copts...)
		if err != nil {
			return nil, fmt.Errorf("remote: worker %q: %w", u, err)
		}
		s.workers = append(s.workers, &worker{url: u, client: c})
	}
	return s, nil
}

// Name implements core.Solver; the registry name is "remote".
func (s *Solver) Name() string { return "remote" }

// CacheKeyName implements core.CacheKeyer: remote solving is bit-identical
// to the inner method solved locally, so result caches key it as that
// method — a coordinator and a plain peer derive the same key for the same
// computation.
func (s *Solver) CacheKeyName() string {
	inner, err := core.SolverByName(s.opts.Inner)
	if err != nil {
		return s.opts.Inner // unknown inner: key conservatively by its raw name
	}
	return core.SolverCacheKey(inner)
}

// Stats snapshots the solver's counters.
func (s *Solver) Stats() Stats {
	st := Stats{
		Dispatched: s.dispatched.Load(),
		Fallbacks:  s.fallbacks.Load(),
		Failures:   s.failures.Load(),
	}
	now := time.Now()
	s.mu.Lock()
	for _, w := range s.workers {
		if now.Before(w.downUntil) {
			st.WorkersDown++
		}
	}
	s.mu.Unlock()
	return st
}

// pick rendezvous-hashes the sub-problem key over the healthy workers:
// every worker scores hash(worker URL, key) and the maximum wins. Identical
// sub-problems land on the same worker (from any coordinator), so worker
// result caches see repeats; when a worker is down its keys redistribute
// over the rest without moving anyone else's assignment — the standard
// highest-random-weight property. Returns nil when no worker is healthy.
func (s *Solver) pick(key string) *worker {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *worker
	var bestScore uint64
	for _, w := range s.workers {
		if now.Before(w.downUntil) {
			continue
		}
		score := fnv64a(w.url + "\x00" + key)
		if best == nil || score > bestScore || (score == bestScore && w.url < best.url) {
			best, bestScore = w, score
		}
	}
	return best
}

func fnv64a(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// noteFailure puts the worker into (exponentially growing) backoff.
func (s *Solver) noteFailure(w *worker, err error) {
	s.failures.Add(1)
	s.mu.Lock()
	w.fails++
	backoff := s.opts.FailureBackoff << (w.fails - 1)
	if backoff > s.opts.MaxBackoff || backoff <= 0 {
		backoff = s.opts.MaxBackoff
	}
	w.downUntil = time.Now().Add(backoff)
	fails := w.fails
	s.mu.Unlock()
	s.logf("remote: worker %s failed (consecutive %d, backoff %s): %v", w.url, fails, backoff, err)
}

// noteSuccess clears the worker's failure state.
func (s *Solver) noteSuccess(w *worker) {
	s.mu.Lock()
	if w.fails > 0 {
		s.logf("remote: worker %s recovered", w.url)
	}
	w.fails = 0
	w.downUntil = time.Time{}
	s.mu.Unlock()
}

func (s *Solver) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// errInfeasibleRemote wraps a worker-reported infeasibility so callers'
// errors.Is(err, core.ErrInfeasible) checks work across the dispatch
// boundary (the sketch pipeline treats infeasible shards as "contributes no
// candidates", not as failures).
type errInfeasibleRemote struct{ url string }

func (e errInfeasibleRemote) Error() string {
	return fmt.Sprintf("remote: worker %s: %v", e.url, core.ErrInfeasible)
}
func (e errInfeasibleRemote) Unwrap() error { return core.ErrInfeasible }

// Solve implements core.Solver: rendezvous-pick a worker, ship the
// sub-problem as a v1 job, stream progress back, and reconstruct the
// bit-identical solution — or fall back to the local solver so the answer
// never depends on fleet health. Context cancellation aborts the remote job
// and returns promptly without fallback.
func (s *Solver) Solve(ctx context.Context, silp *translate.SILP, opts *core.Options) (*core.Solution, error) {
	if len(s.workers) == 0 {
		return s.local.Solve(ctx, silp, opts)
	}

	spec := SolveSpecFor(silp)
	key := SubKey(silp, opts, spec)
	w := s.pick(key)
	if w == nil {
		s.fallbacks.Add(1)
		s.logf("remote: no healthy worker for sub-solve, solving locally")
		return s.local.Solve(ctx, silp, opts)
	}

	// Bounded in-flight dispatch: a 64-shard sketch against a 2-worker pool
	// must not open 64 concurrent jobs.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()

	s.dispatched.Add(1)
	sol, err := s.solveOn(ctx, w, silp, opts, spec)
	switch {
	case err == nil:
		s.noteSuccess(w)
		return sol, nil
	case ctx.Err() != nil:
		// The caller aborted; the worker did nothing wrong.
		return nil, ctx.Err()
	case errors.Is(err, core.ErrInfeasible):
		// A property of the sub-problem, not of the worker: the local
		// solver would (deterministically) report the same.
		s.noteSuccess(w)
		return nil, err
	}
	s.noteFailure(w, err)
	if s.opts.NoFallback {
		return nil, err
	}
	s.fallbacks.Add(1)
	s.logf("remote: falling back to local solve after worker failure")
	return s.local.Solve(ctx, silp, opts)
}

// solveOn runs one sub-solve on one worker.
func (s *Solver) solveOn(ctx context.Context, w *worker, silp *translate.SILP, opts *core.Options, spec *client.SolveSpec) (*core.Solution, error) {
	// The dispatch span carries the trace across the fleet: its trace parent
	// travels as the X-Spq-Trace header (observational only — it is NOT part
	// of the sub-problem key, so traced and untraced dispatches still share
	// worker cache entries), and the worker's span tree is grafted under it
	// on completion.
	ds := obs.SpanFromContext(ctx).StartChild("remote/dispatch")
	ds.SetAttr("worker", w.url)
	defer ds.End()

	// No timeout_ms: the request must be byte-stable across dispatches so
	// repeated sub-problems hit the worker's result cache (the worker keys
	// results by its own default timeout; forwarding the coordinator's
	// jittery remaining budget would make every key unique). Coordinator
	// deadlines are enforced by explicit cancellation below, and a worker
	// orphaned by a crashed coordinator is still bounded by its own
	// -timeout.
	req := client.SubmitRequest{
		Query:       silp.Query.String(),
		Method:      s.opts.Inner,
		Options:     ToWireOptions(opts),
		Solve:       spec,
		TraceParent: obs.TraceParent(ds),
	}

	job, err := w.client.Submit(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("remote: submit to %s: %w", w.url, err)
	}

	forward := func(p client.Progress) {
		if opts == nil || opts.Progress == nil {
			return
		}
		// The wire event carries no candidate package; consumers treat a
		// nil X as "report only" (the engine's best-so-far tracking skips
		// it). Phase labels are applied by the caller's wrapper.
		opts.Progress(core.Progress{
			Phase:         p.Phase,
			Iteration:     p.Iteration,
			M:             p.M,
			Z:             p.Z,
			Feasible:      p.Feasible,
			Objective:     p.Objective,
			Maximize:      silp.Maximize,
			Improved:      p.Improved,
			BestFeasible:  p.BestFeasible,
			BestObjective: p.BestObjective,
			Elapsed:       msToDuration(p.ElapsedMS),
		})
	}

	final, err := w.client.Stream(ctx, job.ID, forward)
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled or timed out on our side: withdraw the remote job
			// (best effort, off the dead context) and report the context.
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, _ = w.client.Cancel(cctx, job.ID)
			cancel()
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("remote: stream from %s: %w", w.url, err)
	}
	if jerr := final.Err(); jerr != nil {
		var apiErr *client.Error
		if errors.As(jerr, &apiErr) && apiErr.Code == client.CodeInfeasible {
			return nil, errInfeasibleRemote{url: w.url}
		}
		// Preserve the worker's structured error (stable code included) in
		// the chain, so a no-fallback coordinator surfaces it end-to-end.
		return nil, fmt.Errorf("remote: worker %s: %w", w.url, jerr)
	}
	if final.Result == nil || final.Result.Raw == nil {
		return nil, fmt.Errorf("remote: worker %s returned no raw solution (is it running an older build?)", w.url)
	}
	sol, err := FromWireSolution(final.Result.Raw, silp.Rel.N())
	if err != nil {
		return nil, fmt.Errorf("remote: worker %s: %w", w.url, err)
	}
	if d := spanData(final.Trace); d != nil {
		ds.AttachRemote(d)
	}
	return sol, nil
}

// spanData converts a wire span tree back to the internal representation
// (the coordinator-side twin of engine's wireTrace).
func spanData(t *client.TraceSpan) *obs.SpanData {
	if t == nil {
		return nil
	}
	d := &obs.SpanData{
		TraceID:     t.TraceID,
		Name:        t.Name,
		StartUnixUS: t.StartUnixUS,
		DurationUS:  t.DurationUS,
		Attrs:       t.Attrs,
	}
	for _, c := range t.Children {
		d.Children = append(d.Children, spanData(c))
	}
	return d
}
