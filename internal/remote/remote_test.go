package remote_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/dist"
	"spq/internal/engine"
	"spq/internal/obs"
	"spq/internal/relation"
	"spq/internal/remote"
	"spq/internal/rng"
	"spq/internal/sketch"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// The tests run in the external test package so they can stand up real
// worker daemons (internal/engine HTTP handlers) — the same topology a
// deployment has, minus the network.

type catalog map[string]*relation.Relation

func (c catalog) Table(name string) (*relation.Relation, bool) {
	rel, ok := c[strings.ToLower(name)]
	return rel, ok
}

// newCatalog builds the deterministic stocks table every node of a test
// fleet loads: identical construction stands in for the shared workload
// seeds of a real deployment.
func newCatalog(t testing.TB, n int) catalog {
	t.Helper()
	rel := relation.New("stocks", n)
	price := make([]float64, n)
	gains := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(40 + 7*(i%9))
		gains[i] = dist.Normal{Mu: 0.5 + float64(i%5)*0.4, Sigma: 0.5 + float64(i%3)*0.5}
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(7), 200)
	return catalog{"stocks": rel}
}

const testQuery = `SELECT PACKAGE(*) FROM stocks SUCH THAT
	SUM(price) <= 300 AND
	SUM(gain) >= -5 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

func coreOptions() *core.Options {
	return &core.Options{Seed: 1, ValidationM: 1000, InitialM: 10, IncrementM: 10, MaxM: 40}
}

func sketchOptions() *sketch.Options {
	return &sketch.Options{GroupSize: 8, MaxCandidates: 32, Shards: 2, Seed: 3}
}

// startWorkers spins k in-process worker daemons over identical catalogs
// and returns their base URLs.
func startWorkers(t *testing.T, k, n int) []string {
	t.Helper()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		e := engine.New(newCatalog(t, n), &engine.Options{Parallelism: 1})
		srv := httptest.NewServer(e.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// runSketch evaluates the test query through a fresh coordinator engine
// with the given sketch sub-problem solver (nil = local default).
func runSketch(t *testing.T, solver core.Solver, n int) *engine.Result {
	t.Helper()
	e := engine.New(newCatalog(t, n), &engine.Options{
		ResultCacheSize: -1, // compare solves, not cache hits
		Parallelism:     1,
		SketchSolver:    solver,
	})
	res, err := e.Query(context.Background(), engine.Request{
		Query:   testQuery,
		Method:  "sketch",
		Options: coreOptions(),
		Sketch:  sketchOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRemoteDeterminismMatrix is the acceptance matrix: the coordinator's
// sketch result must be bit-identical (Feasible/Objective/X, and M/Z) to
// pure-local solving for worker pools of size 0, 1, and 2.
func TestRemoteDeterminismMatrix(t *testing.T) {
	const n = 96
	baseline := runSketch(t, nil, n)
	if baseline.Sketch == nil || baseline.Sketch.FellBack {
		t.Fatalf("baseline did not exercise the sketch pipeline: %+v", baseline.Sketch)
	}

	for _, pool := range []int{0, 1, 2} {
		t.Run(fmt.Sprintf("workers=%d", pool), func(t *testing.T) {
			rs, err := remote.New(remote.Options{Workers: startWorkers(t, pool, n)})
			if err != nil {
				t.Fatal(err)
			}
			res := runSketch(t, rs, n)
			assertSameSolution(t, baseline, res)
			st := rs.Stats()
			if pool == 0 && st.Dispatched != 0 {
				t.Fatalf("empty pool dispatched %d sub-solves", st.Dispatched)
			}
			if pool > 0 {
				// 2 shard sketches + 1 refine, all through the solver seam.
				if st.Dispatched != 3 {
					t.Fatalf("dispatched = %d, want 3 (2 shards + refine)", st.Dispatched)
				}
				if st.Fallbacks != 0 || st.Failures != 0 {
					t.Fatalf("healthy pool reported fallbacks/failures: %+v", st)
				}
				assertDispatchSpansNested(t, res)
			}
		})
	}
}

// assertDispatchSpansNested checks the observability contract of a dispatch:
// every sub-solve shows up in the coordinator's trace as a remote/dispatch
// span carrying the worker's grafted span tree — a worker "query" root that
// adopted the coordinator's trace ID (via the X-Spq-Trace header) and ran a
// real solve. Structure and names only; timings are wall-clock and free.
func assertDispatchSpansNested(t *testing.T, res *engine.Result) {
	t.Helper()
	if res.Trace == nil {
		t.Fatal("coordinator query returned no trace")
	}
	var dispatches []*obs.SpanData
	res.Trace.Walk(func(d *obs.SpanData) {
		if d.Name == "remote/dispatch" {
			dispatches = append(dispatches, d)
		}
	})
	if len(dispatches) != 3 {
		t.Fatalf("trace has %d remote/dispatch spans, want 3:\n%s", len(dispatches), obs.Render(res.Trace))
	}
	for _, d := range dispatches {
		if d.Attrs["worker"] == "" {
			t.Fatalf("dispatch span has no worker attr: %v", d.Attrs)
		}
		var graft *obs.SpanData
		for _, c := range d.Children {
			if c.Name == "query" {
				graft = c
			}
		}
		if graft == nil {
			t.Fatalf("dispatch span carries no grafted worker tree:\n%s", obs.Render(res.Trace))
		}
		if graft.TraceID != res.Trace.TraceID {
			t.Fatalf("worker root trace id = %q, coordinator = %q: header propagation broken",
				graft.TraceID, res.Trace.TraceID)
		}
		solves := 0
		graft.Walk(func(s *obs.SpanData) {
			if obs.PhaseName(s.Name) == "solve" {
				solves++
			}
		})
		if solves == 0 {
			t.Fatalf("grafted worker tree shows no solve spans:\n%s", obs.Render(graft))
		}
	}
}

func assertSameSolution(t *testing.T, want, got *engine.Result) {
	t.Helper()
	if got.Feasible != want.Feasible {
		t.Fatalf("feasible = %v, want %v", got.Feasible, want.Feasible)
	}
	if got.Objective != want.Objective {
		t.Fatalf("objective = %v, want %v (diff %g)", got.Objective, want.Objective, got.Objective-want.Objective)
	}
	if got.M != want.M || got.Z != want.Z {
		t.Fatalf("M/Z = %d/%d, want %d/%d", got.M, got.Z, want.M, want.Z)
	}
	if !reflect.DeepEqual(got.X, want.X) {
		t.Fatalf("packages differ:\n got %v\nwant %v", got.X, want.X)
	}
}

// TestRemoteDirectSolve checks the solver seam below the engine: a direct
// RemoteSolver.Solve on a translated problem matches the local solver
// bit-for-bit and forwards the worker's streamed progress.
func TestRemoteDirectSolve(t *testing.T) {
	const n = 24
	cat := newCatalog(t, n)
	q, err := spaql.Parse(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	silp, err := translate.Build(q, cat["stocks"], nil)
	if err != nil {
		t.Fatal(err)
	}

	opts := coreOptions()
	local, err := core.SummarySearchSolver.Solve(context.Background(), silp, opts)
	if err != nil {
		t.Fatal(err)
	}

	rs, err := remote.New(remote.Options{Workers: startWorkers(t, 1, n)})
	if err != nil {
		t.Fatal(err)
	}
	var events atomic.Int64
	ropts := *opts
	ropts.Progress = func(p core.Progress) {
		if p.X != nil || p.Rel != nil {
			t.Error("forwarded wire progress should carry no candidate package")
		}
		events.Add(1)
	}
	got, err := rs.Solve(context.Background(), silp, &ropts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Feasible != local.Feasible || got.Objective != local.Objective || !reflect.DeepEqual(got.X, local.X) {
		t.Fatalf("remote solve differs from local:\n got %+v\nwant %+v", got, local)
	}
	if got.M != local.M || got.Z != local.Z || len(got.Iterations) != len(local.Iterations) {
		t.Fatalf("history differs: M/Z/iters %d/%d/%d vs %d/%d/%d",
			got.M, got.Z, len(got.Iterations), local.M, local.Z, len(local.Iterations))
	}
	if events.Load() == 0 {
		t.Fatal("no progress events forwarded from the worker")
	}
}

// TestRemoteWorkerFailureFallback kills the worker mid-solve (submissions
// succeed, every poll afterwards breaks) and checks the coordinator falls
// back to a bit-identical local solve.
func TestRemoteWorkerFailureFallback(t *testing.T) {
	const n = 24
	cat := newCatalog(t, n)
	q, _ := spaql.Parse(testQuery)
	silp, err := translate.Build(q, cat["stocks"], nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := coreOptions()
	local, err := core.SummarySearchSolver.Solve(context.Background(), silp, opts)
	if err != nil {
		t.Fatal(err)
	}

	// A worker that accepts the job, then dies: submits proxy to a real
	// engine, polls all fail (as if the process was killed mid-solve).
	worker := engine.New(newCatalog(t, n), &engine.Options{Parallelism: 1})
	h := worker.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			h.ServeHTTP(w, r)
			return
		}
		http.Error(w, "worker killed", http.StatusInternalServerError)
	}))
	defer flaky.Close()

	rs, err := remote.New(remote.Options{Workers: []string{flaky.URL}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.Solve(context.Background(), silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Feasible != local.Feasible || got.Objective != local.Objective || !reflect.DeepEqual(got.X, local.X) {
		t.Fatalf("fallback solve differs from local:\n got %+v\nwant %+v", got, local)
	}
	st := rs.Stats()
	if st.Fallbacks != 1 || st.Failures != 1 {
		t.Fatalf("stats = %+v, want 1 fallback / 1 failure", st)
	}
	if st.WorkersDown != 1 {
		t.Fatalf("failed worker not in backoff: %+v", st)
	}

	// Dead-from-the-start worker (connection refused) falls back too.
	closed := httptest.NewServer(http.NotFoundHandler())
	closed.Close()
	rs2, err := remote.New(remote.Options{Workers: []string{closed.URL}})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := rs2.Solve(context.Background(), silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.X, local.X) {
		t.Fatal("fallback after connection failure differs from local")
	}
}

// TestRemoteInfeasiblePropagation: a deterministically infeasible
// sub-problem must come back as core.ErrInfeasible — recognized by
// errors.Is across the dispatch boundary — without burning a local
// fallback solve and without penalizing the (healthy) worker.
func TestRemoteInfeasiblePropagation(t *testing.T) {
	const n = 16
	cat := newCatalog(t, n)
	q, err := spaql.Parse(`SELECT PACKAGE(*) FROM stocks SUCH THAT
		COUNT(*) >= 5 AND COUNT(*) <= 2 AND
		SUM(gain) >= 0 WITH PROBABILITY >= 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	silp, err := translate.Build(q, cat["stocks"], nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := remote.New(remote.Options{Workers: startWorkers(t, 1, n)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rs.Solve(context.Background(), silp, coreOptions())
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want core.ErrInfeasible", err)
	}
	st := rs.Stats()
	if st.Dispatched != 1 || st.Fallbacks != 0 || st.Failures != 0 || st.WorkersDown != 0 {
		t.Fatalf("infeasibility mis-accounted: %+v", st)
	}
}

// TestRemoteErrorCodePropagation: with fallback disabled, a worker-side
// structured error must surface end-to-end with its stable code — the
// coordinator's job error used to collapse everything to "internal".
func TestRemoteErrorCodePropagation(t *testing.T) {
	const n = 16
	// A worker that rejects every submission with a structured timeout.
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		fmt.Fprint(w, `{"error":{"code":"timeout","message":"worker deadline exceeded"}}`)
	}))
	defer sick.Close()

	rs, err := remote.New(remote.Options{Workers: []string{sick.URL}, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.RegisterSolver(rs); err != nil {
		t.Fatal(err)
	}

	e := engine.New(newCatalog(t, n), &engine.Options{Parallelism: 1, ResultCacheSize: -1})
	job, err := e.Submit(engine.Request{Query: testQuery, Method: "remote", Options: coreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	snap := job.Snapshot(0)
	if snap.State != client.JobFailed {
		t.Fatalf("job state = %s, want failed", snap.State)
	}
	if snap.Error == nil || snap.Error.Code != client.CodeTimeout {
		t.Fatalf("job error = %+v, want code %q end-to-end", snap.Error, client.CodeTimeout)
	}
	if !strings.Contains(snap.Error.Message, "worker deadline exceeded") {
		t.Fatalf("worker message lost: %q", snap.Error.Message)
	}
}

// TestRendezvousAssignment: identical sub-problems map to the same worker
// — and actually hit that worker's result cache, which requires dispatch
// requests to be byte-stable (no per-dispatch timeouts or other jitter in
// the submission) — while different keys spread over the pool.
func TestRendezvousAssignment(t *testing.T) {
	const n = 24
	var hits [2]atomic.Int64
	engines := make([]*engine.Engine, 2)
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		i := i
		engines[i] = engine.New(newCatalog(t, n), &engine.Options{Parallelism: 1})
		h := engines[i].Handler()
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				hits[i].Add(1)
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	cat := newCatalog(t, n)
	q, _ := spaql.Parse(testQuery)
	silp, err := translate.Build(q, cat["stocks"], nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := remote.New(remote.Options{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		// A fresh deadline per call, as the engine's per-query timeout
		// gives every real dispatch: the remaining budget differs by
		// scheduling jitter, and the submission must stay byte-stable
		// anyway for the worker's result cache to hit.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		_, err := rs.Solve(ctx, silp, coreOptions())
		cancel()
		if err != nil {
			t.Fatal(err)
		}
	}
	a, b := hits[0].Load(), hits[1].Load()
	if a+b != 3 || (a != 0 && b != 0) {
		t.Fatalf("identical sub-problems spread across workers: %d/%d", a, b)
	}
	cacheHits := engines[0].Stats().ResultCacheHits + engines[1].Stats().ResultCacheHits
	if cacheHits != 2 {
		t.Fatalf("worker result-cache hits = %d, want 2 (repeat dispatches must be byte-stable)", cacheHits)
	}
	// A different seed is a different sub-problem key; over several seeds
	// both workers should see traffic (rendezvous spreads by key).
	for seed := uint64(2); seed < 12; seed++ {
		o := coreOptions()
		o.Seed = seed
		if _, err := rs.Solve(context.Background(), silp, o); err != nil {
			t.Fatal(err)
		}
	}
	if hits[0].Load() == a || hits[1].Load() == b {
		t.Fatalf("varying keys never reached one of the workers: %d/%d", hits[0].Load(), hits[1].Load())
	}
}

// TestRemoteCacheKeyName: a remote solver keys result caches as its inner
// method, so a coordinator and a locally solving peer derive the same
// sketch cache key for the same computation (replicated entries stay
// shareable across heterogeneously configured fleet nodes).
func TestRemoteCacheKeyName(t *testing.T) {
	rs, err := remote.New(remote.Options{Workers: []string{"http://w1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	localKey := (&sketch.Options{GroupSize: 8, Shards: 2}).Key()
	remoteKey := (&sketch.Options{GroupSize: 8, Shards: 2, Solver: rs}).Key()
	if localKey != remoteKey {
		t.Fatalf("sketch cache keys diverge by solver config:\n local %s\nremote %s", localKey, remoteKey)
	}
	naiveRS, err := remote.New(remote.Options{Workers: []string{"http://w1:1"}, Inner: "naive"})
	if err != nil {
		t.Fatal(err)
	}
	naiveKey := (&sketch.Options{GroupSize: 8, Shards: 2, Solver: naiveRS}).Key()
	if naiveKey == localKey {
		t.Fatal("remote(naive) must not share a key with summarysearch")
	}
}
