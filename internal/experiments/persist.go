package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// recordJSON is the serialized form of a Record; durations are stored in
// nanoseconds for lossless round trips.
type recordJSON struct {
	Workload  string  `json:"workload"`
	Query     string  `json:"query"`
	Method    string  `json:"method"`
	Param     string  `json:"param,omitempty"`
	Value     int     `json:"value,omitempty"`
	Run       int     `json:"run"`
	Feasible  bool    `json:"feasible"`
	Objective float64 `json:"objective"`
	Maximize  bool    `json:"maximize"`
	TimeNS    int64   `json:"time_ns"`
	FinalM    int     `json:"final_m"`
	FinalZ    int     `json:"final_z"`
	Iters     int     `json:"iters"`
	Err       string  `json:"err,omitempty"`
}

// WriteJSON writes experiment records as a JSON array, suitable for
// archiving runs and re-aggregating later.
func WriteJSON(w io.Writer, records []Record) error {
	out := make([]recordJSON, len(records))
	for i, r := range records {
		out[i] = recordJSON{
			Workload: r.Workload, Query: r.Query, Method: string(r.Method),
			Param: r.Param, Value: r.Value, Run: r.Run,
			Feasible: r.Feasible, Objective: r.Objective, Maximize: r.Maximize,
			TimeNS: r.Time.Nanoseconds(), FinalM: r.FinalM, FinalZ: r.FinalZ,
			Iters: r.Iters, Err: r.Err,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON reads records previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Record, error) {
	var raw []recordJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("experiments: decoding records: %w", err)
	}
	out := make([]Record, len(raw))
	for i, j := range raw {
		out[i] = Record{
			Workload: j.Workload, Query: j.Query, Method: Method(j.Method),
			Param: j.Param, Value: j.Value, Run: j.Run,
			Feasible: j.Feasible, Objective: j.Objective, Maximize: j.Maximize,
			Time: time.Duration(j.TimeNS), FinalM: j.FinalM, FinalZ: j.FinalZ,
			Iters: j.Iters, Err: j.Err,
		}
	}
	return out, nil
}
