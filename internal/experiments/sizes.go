package experiments

import (
	"fmt"
	"strings"

	"spq/internal/rng"
	"spq/internal/scenario"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// SizeRecord reports the coefficient count of one generated DILP — the
// paper's problem-size measure (Θ(NMK) for SAA vs Θ(NZK) for CSA, §3.1 and
// §4.1).
type SizeRecord struct {
	Workload     string
	Query        string
	Formulation  string // "SAA" or "CSA"
	N, M, Z      int
	Coefficients int
}

// RunSizes builds SAA formulations at each M and CSA formulations at each Z
// for the first query of a workload and reports DILP sizes.
func RunSizes(cfg Config, wname, queryID string, ms, zs []int) ([]SizeRecord, error) {
	in, err := buildInstance(wname, cfg.WorkloadN, cfg.DataSeed, cfg.MeansM)
	if err != nil {
		return nil, err
	}
	q, ok := in.QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("experiments: %s has no query %s", wname, queryID)
	}
	parsed, err := spaql.Parse(q.SPaQL)
	if err != nil {
		return nil, err
	}
	silp, err := translate.Build(parsed, in.Table(q.Table), nil)
	if err != nil {
		return nil, err
	}
	src := rng.NewSource(cfg.DataSeed).Derive(99)
	var out []SizeRecord
	maxM := 0
	for _, m := range ms {
		if m > maxM {
			maxM = m
		}
	}
	sets, objSet, err := silp.GenerateSets(src, 0, maxM)
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		sub := make([]*scenario.Set, len(sets))
		for k, s := range sets {
			sub[k] = scenario.FromRows(s.Attr, s.IDs[:m], rowsPrefix(s, m))
		}
		var objSub *scenario.Set
		if objSet != nil {
			objSub = scenario.FromRows(objSet.Attr, objSet.IDs[:m], rowsPrefix(objSet, m))
		}
		model, _, err := silp.FormulateSAA(sub, objSub)
		if err != nil {
			return nil, err
		}
		out = append(out, SizeRecord{
			Workload: wname, Query: q.ID, Formulation: "SAA",
			N: silp.N, M: m, Coefficients: model.NumCoefficients(),
		})
	}
	for _, z := range zs {
		if z > maxM {
			continue
		}
		summaries := make([][]*scenario.Summary, len(silp.ProbCons))
		var parts [][]int
		if len(sets) > 0 {
			parts = sets[0].Partition(z, 1)
		} else if objSet != nil {
			parts = objSet.Partition(z, 1)
		}
		for k, pc := range silp.ProbCons {
			for _, part := range parts {
				summaries[k] = append(summaries[k], sets[k].Summarize(part, pc.Direction(), nil))
			}
		}
		var objSummaries []*scenario.Summary
		if objSet != nil {
			dir := scenario.Max
			if silp.ObjGeq {
				dir = scenario.Min
			}
			for _, part := range parts {
				objSummaries = append(objSummaries, objSet.Summarize(part, dir, nil))
			}
		}
		model, _, err := silp.FormulateCSA(summaries, objSummaries)
		if err != nil {
			return nil, err
		}
		out = append(out, SizeRecord{
			Workload: wname, Query: q.ID, Formulation: "CSA",
			N: silp.N, M: maxM, Z: z, Coefficients: model.NumCoefficients(),
		})
	}
	return out, nil
}

func rowsPrefix(s *scenario.Set, m int) [][]float64 {
	rows := make([][]float64, m)
	for j := 0; j < m; j++ {
		rows[j] = s.Row(j)
	}
	return rows
}

// RenderSizes renders size records as a text table.
func RenderSizes(recs []SizeRecord) string {
	var sb strings.Builder
	sb.WriteString("== DILP size: SAA Θ(NMK) vs CSA Θ(NZK) ==\n")
	fmt.Fprintf(&sb, "%-10s %-4s %-5s %8s %6s %6s %14s\n", "workload", "qry", "form", "N", "M", "Z", "coefficients")
	for _, r := range recs {
		z := "-"
		if r.Formulation == "CSA" {
			z = fmt.Sprintf("%d", r.Z)
		}
		fmt.Fprintf(&sb, "%-10s %-4s %-5s %8d %6d %6s %14d\n",
			r.Workload, r.Query, r.Formulation, r.N, r.M, z, r.Coefficients)
	}
	return sb.String()
}

// DescribeWorkloads renders the Table 3 reproduction: every query of every
// workload with its parameters.
func DescribeWorkloads(cfg Config, workloads []string) (string, error) {
	var sb strings.Builder
	sb.WriteString("== Table 3: workloads and queries ==\n")
	for _, wname := range workloads {
		in, err := buildInstance(wname, cfg.WorkloadN, cfg.DataSeed, cfg.MeansM)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "\n-- %s --\n", in.Name)
		for _, q := range in.Queries {
			rel := in.Table(q.Table)
			feas := "feasible"
			if !q.Feasible {
				feas = "INFEASIBLE"
			}
			fmt.Fprintf(&sb, "%-4s N=%-7d Z=%d %-10s %s\n", q.ID, rel.N(), q.FixedZ, feas, q.Description)
			fmt.Fprintf(&sb, "     %s\n", oneLine(q.SPaQL))
		}
	}
	return sb.String(), nil
}

func oneLine(s string) string {
	fields := strings.Fields(s)
	return strings.Join(fields, " ")
}

// WorkloadNames lists the supported workloads.
func WorkloadNames() []string { return []string{"galaxy", "portfolio", "tpch"} }
