package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestJSONRoundTrip(t *testing.T) {
	in := []Record{
		{
			Workload: "galaxy", Query: "Q1", Method: MethodSummarySearch,
			Param: "M", Value: 40, Run: 2, Feasible: true,
			Objective: 48.57, Maximize: false, Time: 38 * time.Millisecond,
			FinalM: 40, FinalZ: 1, Iters: 7,
		},
		{
			Workload: "tpch", Query: "Q8", Method: MethodNaive,
			Feasible: false, Time: 19 * time.Millisecond, Err: "",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestJSONAggregatesAfterReload(t *testing.T) {
	in := []Record{
		{Workload: "w", Query: "Q1", Method: MethodSummarySearch, Feasible: true, Objective: 10, Maximize: true, Time: time.Second},
		{Workload: "w", Query: "Q1", Method: MethodNaive, Feasible: false, Time: time.Second},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pts := Aggregate(out)
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
}

func TestReadJSONMalformed(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestWriteJSONStableFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Record{{Workload: "w", Query: "Q1", Method: MethodNaive, Time: time.Millisecond}}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, field := range []string{`"workload"`, `"query"`, `"method"`, `"time_ns"`, `"feasible"`} {
		if !strings.Contains(s, field) {
			t.Fatalf("serialized record missing %s:\n%s", field, s)
		}
	}
}
