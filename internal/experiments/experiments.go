// Package experiments reproduces the paper's evaluation (§6): end-to-end
// time to 100% feasibility (Figure 4), scalability in optimization scenarios
// M (Figure 5), in summaries Z (Figure 6), and in dataset size N (Figure 7),
// for both Naïve and SummarySearch over the Galaxy/Portfolio/TPC-H
// workloads. Results are plain records that cmd/spqbench renders as the
// rows/series the paper plots.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"spq/internal/core"
	"spq/internal/rng"
	"spq/internal/spaql"
	"spq/internal/translate"
	"spq/internal/workload"
)

// Method names an evaluation algorithm.
type Method string

const (
	MethodNaive         Method = "Naive"
	MethodSummarySearch Method = "SummarySearch"
)

// Config controls an experiment run.
type Config struct {
	// WorkloadN is the table size per workload (stocks for Portfolio).
	WorkloadN int
	// DataSeed drives synthetic base-data generation.
	DataSeed uint64
	// Runs is the number of i.i.d. runs per point (the paper uses 10).
	Runs int
	// ValidationM is M̂.
	ValidationM int
	// InitialM / IncrementM / MaxM control the scenario schedule.
	InitialM   int
	IncrementM int
	MaxM       int
	// SolverTime bounds each MILP solve.
	SolverTime time.Duration
	// TimeLimit bounds each full query evaluation (the paper's 4-hour cap).
	TimeLimit time.Duration
	// MeansM is the scenario count for mean precomputation.
	MeansM int
}

// Defaults returns a laptop-scale configuration with the paper's shape
// preserved (see EXPERIMENTS.md for the scale mapping).
func Defaults() Config {
	return Config{
		WorkloadN:   300,
		DataSeed:    42,
		Runs:        5,
		ValidationM: 3000,
		InitialM:    10,
		IncrementM:  10,
		MaxM:        80,
		SolverTime:  10 * time.Second,
		TimeLimit:   2 * time.Minute,
		MeansM:      1000,
	}
}

func (c Config) coreOptions(runSeed uint64, fixedZ int) *core.Options {
	return &core.Options{
		Seed:        runSeed,
		ValidationM: c.ValidationM,
		InitialM:    c.InitialM,
		IncrementM:  c.IncrementM,
		MaxM:        c.MaxM,
		FixedZ:      fixedZ,
		SolverTime:  c.SolverTime,
		TimeLimit:   c.TimeLimit,
	}
}

// Record is one (query, method, run) outcome.
type Record struct {
	Workload  string
	Query     string
	Method    Method
	Param     string // swept parameter name: "", "M", "Z", or "N"
	Value     int    // swept parameter value
	Run       int
	Feasible  bool
	Objective float64
	Maximize  bool
	Time      time.Duration
	FinalM    int
	FinalZ    int
	Iters     int
	Err       string
}

// buildInstance constructs the named workload.
func buildInstance(name string, n int, seed uint64, meansM int) (*workload.Instance, error) {
	cfg := workload.Config{N: n, Seed: seed, MeansM: meansM}
	switch name {
	case "galaxy":
		return workload.Galaxy(cfg), nil
	case "portfolio":
		return workload.Portfolio(cfg), nil
	case "tpch":
		return workload.TPCH(cfg), nil
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
}

// evaluate runs one method once on one query.
func evaluate(in *workload.Instance, q workload.Query, method Method, opts *core.Options) Record {
	rec := Record{Workload: in.Name, Query: q.ID, Method: method}
	parsed, err := spaql.Parse(q.SPaQL)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	silp, err := translate.Build(parsed, in.Table(q.Table), nil)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Maximize = silp.Maximize
	start := time.Now()
	var sol *core.Solution
	switch method {
	case MethodNaive:
		sol, err = core.Naive(silp, opts)
	default:
		sol, err = core.SummarySearch(silp, opts)
	}
	rec.Time = time.Since(start)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Feasible = sol.Feasible
	rec.Objective = sol.Objective
	rec.FinalM = sol.M
	rec.FinalZ = sol.Z
	rec.Iters = len(sol.Iterations)
	return rec
}

// RunEndToEnd reproduces Figure 4: for every query of the named workloads,
// run both methods Runs times with distinct seeds and record feasibility
// and cumulative time.
func RunEndToEnd(cfg Config, workloads []string, queryFilter []string) ([]Record, error) {
	var out []Record
	for _, wname := range workloads {
		in, err := buildInstance(wname, cfg.WorkloadN, cfg.DataSeed, cfg.MeansM)
		if err != nil {
			return nil, err
		}
		for _, q := range in.Queries {
			if !matchQuery(q.ID, queryFilter) {
				continue
			}
			for run := 0; run < cfg.Runs; run++ {
				seed := rng.Mix(cfg.DataSeed, uint64(run)+1)
				for _, method := range []Method{MethodSummarySearch, MethodNaive} {
					opts := cfg.coreOptions(seed, q.FixedZ)
					rec := evaluate(in, q, method, opts)
					rec.Run = run
					out = append(out, rec)
				}
			}
		}
	}
	return out, nil
}

// RunScenarioScaling reproduces Figure 5: pin M at each value (no growth)
// and compare methods.
func RunScenarioScaling(cfg Config, wname, queryID string, ms []int) ([]Record, error) {
	in, err := buildInstance(wname, cfg.WorkloadN, cfg.DataSeed, cfg.MeansM)
	if err != nil {
		return nil, err
	}
	q, ok := in.QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("experiments: %s has no query %s", wname, queryID)
	}
	var out []Record
	for _, m := range ms {
		for run := 0; run < cfg.Runs; run++ {
			seed := rng.Mix(cfg.DataSeed, uint64(m), uint64(run)+1)
			for _, method := range []Method{MethodSummarySearch, MethodNaive} {
				opts := cfg.coreOptions(seed, q.FixedZ)
				opts.InitialM = m
				opts.IncrementM = m
				opts.MaxM = m // single shot at this M
				rec := evaluate(in, q, method, opts)
				rec.Param, rec.Value, rec.Run = "M", m, run
				out = append(out, rec)
			}
		}
	}
	return out, nil
}

// RunSummaryScaling reproduces Figure 6 (Portfolio): fix M and sweep Z for
// SummarySearch, with Naïve at the same M as the reference series.
func RunSummaryScaling(cfg Config, wname, queryID string, m int, zs []int) ([]Record, error) {
	in, err := buildInstance(wname, cfg.WorkloadN, cfg.DataSeed, cfg.MeansM)
	if err != nil {
		return nil, err
	}
	q, ok := in.QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("experiments: %s has no query %s", wname, queryID)
	}
	var out []Record
	for run := 0; run < cfg.Runs; run++ {
		seed := rng.Mix(cfg.DataSeed, 0xf16, uint64(run)+1)
		opts := cfg.coreOptions(seed, 0)
		opts.InitialM = m
		opts.IncrementM = m
		opts.MaxM = m
		rec := evaluate(in, q, MethodNaive, opts)
		rec.Param, rec.Value, rec.Run = "Z", m, run // Naïve ≡ Z=M reference
		out = append(out, rec)
	}
	for _, z := range zs {
		if z > m {
			continue
		}
		for run := 0; run < cfg.Runs; run++ {
			seed := rng.Mix(cfg.DataSeed, 0xf16, uint64(run)+1)
			opts := cfg.coreOptions(seed, z)
			opts.InitialM = m
			opts.IncrementM = m
			opts.MaxM = m
			rec := evaluate(in, q, MethodSummarySearch, opts)
			rec.Param, rec.Value, rec.Run = "Z", z, run
			out = append(out, rec)
		}
	}
	return out, nil
}

// RunSizeScaling reproduces Figure 7 (Galaxy): sweep the dataset size N.
func RunSizeScaling(cfg Config, wname, queryID string, ns []int) ([]Record, error) {
	var out []Record
	for _, n := range ns {
		in, err := buildInstance(wname, n, cfg.DataSeed, cfg.MeansM)
		if err != nil {
			return nil, err
		}
		q, ok := in.QueryByID(queryID)
		if !ok {
			return nil, fmt.Errorf("experiments: %s has no query %s", wname, queryID)
		}
		for run := 0; run < cfg.Runs; run++ {
			seed := rng.Mix(cfg.DataSeed, uint64(n), uint64(run)+1)
			for _, method := range []Method{MethodSummarySearch, MethodNaive} {
				opts := cfg.coreOptions(seed, q.FixedZ)
				rec := evaluate(in, q, method, opts)
				rec.Param, rec.Value, rec.Run = "N", n, run
				out = append(out, rec)
			}
		}
	}
	return out, nil
}

// Point is an aggregated experiment point: one (query, method, param value).
type Point struct {
	Workload string
	Query    string
	Method   Method
	Param    string
	Value    int
	Runs     int
	// FeasRate is the feasibility rate over runs (§6.1 metric).
	FeasRate float64
	// MeanTime averages wall-clock across runs.
	MeanTime time.Duration
	// ApproxRatio is 1+ε̂ relative to the best feasible objective found by
	// any method at the same point group (§6.1); NaN when never feasible.
	ApproxRatio float64
	// MeanObjective averages the (feasible-run) objectives.
	MeanObjective float64
}

// Aggregate groups records into points and computes feasibility rates and
// empirical approximation ratios 1+ε̂ = ω/ω* (min) or ω*/ω (max), where ω*
// is the best feasible objective at the same (workload, query, param value)
// across all methods.
func Aggregate(records []Record) []Point {
	type groupKey struct {
		w, q, param string
		value       int
	}
	type pointKey struct {
		groupKey
		method Method
	}
	bestObj := map[groupKey]float64{}
	haveBest := map[groupKey]bool{}
	for _, r := range records {
		if !r.Feasible {
			continue
		}
		gk := groupKey{r.Workload, r.Query, r.Param, r.Value}
		if !haveBest[gk] {
			bestObj[gk], haveBest[gk] = r.Objective, true
			continue
		}
		if (r.Maximize && r.Objective > bestObj[gk]) || (!r.Maximize && r.Objective < bestObj[gk]) {
			bestObj[gk] = r.Objective
		}
	}
	pts := map[pointKey]*Point{}
	var order []pointKey
	for _, r := range records {
		pk := pointKey{groupKey{r.Workload, r.Query, r.Param, r.Value}, r.Method}
		p, ok := pts[pk]
		if !ok {
			p = &Point{Workload: r.Workload, Query: r.Query, Method: r.Method, Param: r.Param, Value: r.Value, ApproxRatio: math.NaN()}
			pts[pk] = p
			order = append(order, pk)
		}
		p.Runs++
		p.MeanTime += r.Time
		if r.Feasible {
			p.FeasRate++
			p.MeanObjective += r.Objective
		}
	}
	var out []Point
	for _, pk := range order {
		p := pts[pk]
		feasRuns := p.FeasRate
		p.FeasRate /= float64(p.Runs)
		p.MeanTime /= time.Duration(p.Runs)
		if feasRuns > 0 {
			p.MeanObjective /= feasRuns
			gk := pk.groupKey
			if haveBest[gk] {
				best := bestObj[gk]
				p.ApproxRatio = ratio(p.MeanObjective, best, recordsMaximize(records, pk.q))
			}
		}
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Method < b.Method
	})
	return out
}

// recordsMaximize finds the sense of a query from the records (all records
// of one query share it).
func recordsMaximize(records []Record, query string) bool {
	for _, r := range records {
		if r.Query == query {
			return r.Maximize
		}
	}
	return false
}

// ratio computes the empirical 1+ε̂ accuracy metric of §6.1.
func ratio(obj, best float64, maximize bool) float64 {
	if maximize {
		if obj == 0 {
			return math.Inf(1)
		}
		r := best / obj
		if r < 1 {
			r = 1
		}
		return r
	}
	if best == 0 {
		if obj == 0 {
			return 1
		}
		return math.Inf(1)
	}
	r := obj / best
	if r < 1 {
		r = 1
	}
	return r
}

// RenderPoints renders aggregated points as an aligned text table, one row
// per point — the textual equivalent of a paper figure.
func RenderPoints(title string, pts []Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	fmt.Fprintf(&sb, "%-10s %-4s %-14s %6s %8s %12s %12s %10s\n",
		"workload", "qry", "method", "param", "feas%", "time", "objective", "1+eps")
	for _, p := range pts {
		param := "-"
		if p.Param != "" {
			param = fmt.Sprintf("%s=%d", p.Param, p.Value)
		}
		approx := "-"
		if !math.IsNaN(p.ApproxRatio) {
			approx = fmt.Sprintf("%.3f", p.ApproxRatio)
		}
		obj := "-"
		if p.FeasRate > 0 {
			obj = fmt.Sprintf("%.4g", p.MeanObjective)
		}
		fmt.Fprintf(&sb, "%-10s %-4s %-14s %6s %7.0f%% %12s %12s %10s\n",
			p.Workload, p.Query, p.Method, param, p.FeasRate*100,
			p.MeanTime.Round(time.Millisecond), obj, approx)
	}
	return sb.String()
}

func matchQuery(id string, filter []string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if strings.EqualFold(f, id) {
			return true
		}
	}
	return false
}
