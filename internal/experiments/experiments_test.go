package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig() Config {
	return Config{
		WorkloadN:   30,
		DataSeed:    7,
		Runs:        2,
		ValidationM: 400,
		InitialM:    8,
		IncrementM:  8,
		MaxM:        24,
		SolverTime:  5 * time.Second,
		TimeLimit:   time.Minute,
		MeansM:      200,
	}
}

func TestRunEndToEndSingleQuery(t *testing.T) {
	recs, err := RunEndToEnd(tinyConfig(), []string{"portfolio"}, []string{"Q1"})
	if err != nil {
		t.Fatal(err)
	}
	// 2 runs × 2 methods.
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	ssFeasible := false
	for _, r := range recs {
		if r.Err != "" {
			t.Fatalf("record error: %s", r.Err)
		}
		if r.Method == MethodSummarySearch && r.Feasible {
			ssFeasible = true
		}
		if !r.Maximize {
			t.Fatal("portfolio Q1 is a maximization")
		}
	}
	if !ssFeasible {
		t.Fatal("SummarySearch never reached feasibility on the easy portfolio query")
	}
}

func TestRunScenarioScaling(t *testing.T) {
	recs, err := RunScenarioScaling(tinyConfig(), "galaxy", "Q1", []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*2*2 { // 2 Ms × 2 runs × 2 methods
		t.Fatalf("got %d records", len(recs))
	}
	for _, r := range recs {
		if r.Param != "M" {
			t.Fatalf("param = %q", r.Param)
		}
		if r.Value != 8 && r.Value != 16 {
			t.Fatalf("value = %d", r.Value)
		}
		if r.FinalM > r.Value {
			t.Fatalf("pinned M grew: final %d > %d", r.FinalM, r.Value)
		}
	}
}

func TestRunSummaryScaling(t *testing.T) {
	recs, err := RunSummaryScaling(tinyConfig(), "portfolio", "Q1", 8, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Naïve reference (2 runs) + 3 Z values × 2 runs.
	if len(recs) != 2+6 {
		t.Fatalf("got %d records", len(recs))
	}
	sawNaive := false
	for _, r := range recs {
		if r.Method == MethodNaive {
			sawNaive = true
			if r.Value != 8 {
				t.Fatalf("Naive reference at Z=%d, want M=8", r.Value)
			}
		}
	}
	if !sawNaive {
		t.Fatal("missing Naive reference series")
	}
}

func TestRunSizeScaling(t *testing.T) {
	recs, err := RunSizeScaling(tinyConfig(), "galaxy", "Q3", []int{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*2*2 {
		t.Fatalf("got %d records", len(recs))
	}
	for _, r := range recs {
		if r.Param != "N" {
			t.Fatalf("param = %q", r.Param)
		}
	}
}

func TestAggregateComputesRatesAndRatios(t *testing.T) {
	recs := []Record{
		{Workload: "w", Query: "Q1", Method: MethodSummarySearch, Feasible: true, Objective: 10, Maximize: true, Time: time.Second},
		{Workload: "w", Query: "Q1", Method: MethodSummarySearch, Feasible: true, Objective: 10, Maximize: true, Time: 3 * time.Second},
		{Workload: "w", Query: "Q1", Method: MethodNaive, Feasible: true, Objective: 20, Maximize: true, Time: time.Second},
		{Workload: "w", Query: "Q1", Method: MethodNaive, Feasible: false, Objective: 0, Maximize: true, Time: time.Second},
	}
	pts := Aggregate(recs)
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	var ss, nv Point
	for _, p := range pts {
		switch p.Method {
		case MethodSummarySearch:
			ss = p
		case MethodNaive:
			nv = p
		}
	}
	if ss.FeasRate != 1 || nv.FeasRate != 0.5 {
		t.Fatalf("feas rates: ss=%v nv=%v", ss.FeasRate, nv.FeasRate)
	}
	if ss.MeanTime != 2*time.Second {
		t.Fatalf("ss mean time = %v", ss.MeanTime)
	}
	// Best objective is 20 (Naive); SS ratio = 20/10 = 2, Naive ratio = 1.
	if math.Abs(ss.ApproxRatio-2) > 1e-9 {
		t.Fatalf("ss ratio = %v, want 2", ss.ApproxRatio)
	}
	if math.Abs(nv.ApproxRatio-1) > 1e-9 {
		t.Fatalf("nv ratio = %v, want 1", nv.ApproxRatio)
	}
}

func TestAggregateMinimization(t *testing.T) {
	recs := []Record{
		{Workload: "w", Query: "Q1", Method: MethodSummarySearch, Feasible: true, Objective: 30, Maximize: false},
		{Workload: "w", Query: "Q1", Method: MethodNaive, Feasible: true, Objective: 20, Maximize: false},
	}
	pts := Aggregate(recs)
	for _, p := range pts {
		switch p.Method {
		case MethodSummarySearch:
			if math.Abs(p.ApproxRatio-1.5) > 1e-9 {
				t.Fatalf("ss ratio = %v, want 30/20", p.ApproxRatio)
			}
		case MethodNaive:
			if math.Abs(p.ApproxRatio-1) > 1e-9 {
				t.Fatalf("nv ratio = %v, want 1", p.ApproxRatio)
			}
		}
	}
}

func TestAggregateNeverFeasible(t *testing.T) {
	recs := []Record{
		{Workload: "w", Query: "Q8", Method: MethodNaive, Feasible: false},
	}
	pts := Aggregate(recs)
	if len(pts) != 1 || !math.IsNaN(pts[0].ApproxRatio) {
		t.Fatalf("ratio should be NaN for never-feasible points: %+v", pts)
	}
}

func TestRenderPoints(t *testing.T) {
	pts := []Point{{
		Workload: "galaxy", Query: "Q1", Method: MethodSummarySearch,
		Param: "M", Value: 10, Runs: 5, FeasRate: 1,
		MeanTime: 123 * time.Millisecond, MeanObjective: 42.5, ApproxRatio: 1.02,
	}}
	out := RenderPoints("Figure 5", pts)
	for _, want := range []string{"Figure 5", "galaxy", "Q1", "SummarySearch", "M=10", "100%", "1.020"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunSizesShowsComplexitySeparation(t *testing.T) {
	cfg := tinyConfig()
	recs, err := RunSizes(cfg, "galaxy", "Q1", []int{10, 20, 40}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var saa []SizeRecord
	var csa []SizeRecord
	for _, r := range recs {
		if r.Formulation == "SAA" {
			saa = append(saa, r)
		} else {
			csa = append(csa, r)
		}
	}
	if len(saa) != 3 || len(csa) != 2 {
		t.Fatalf("got %d SAA, %d CSA", len(saa), len(csa))
	}
	// SAA grows with M.
	if !(saa[0].Coefficients < saa[1].Coefficients && saa[1].Coefficients < saa[2].Coefficients) {
		t.Fatalf("SAA size not increasing: %+v", saa)
	}
	// CSA at Z=1 is much smaller than SAA at M=40.
	if csa[0].Coefficients*5 > saa[2].Coefficients {
		t.Fatalf("CSA (%d) not ≪ SAA (%d)", csa[0].Coefficients, saa[2].Coefficients)
	}
	out := RenderSizes(recs)
	if !strings.Contains(out, "SAA") || !strings.Contains(out, "CSA") {
		t.Fatal("render missing formulations")
	}
}

func TestDescribeWorkloads(t *testing.T) {
	out, err := DescribeWorkloads(tinyConfig(), WorkloadNames())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"galaxy", "portfolio", "tpch", "Q1", "Q8", "INFEASIBLE", "WITH PROBABILITY"} {
		if !strings.Contains(out, want) {
			t.Fatalf("description missing %q", want)
		}
	}
}

func TestBuildInstanceUnknown(t *testing.T) {
	if _, err := buildInstance("nope", 10, 1, 100); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestMatchQuery(t *testing.T) {
	if !matchQuery("Q1", nil) || !matchQuery("Q1", []string{"q1"}) || matchQuery("Q1", []string{"Q2"}) {
		t.Fatal("matchQuery wrong")
	}
}
