package stream

import (
	"context"
	"testing"

	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/scenario"
)

// TestPatchSummarizeMatchesFullResummarize pins the delta-maintenance
// contract: after a deterministic-column patch, re-folding only the touched
// tuples of a pre-delta summary is bit-identical to a full N×M
// re-summarization against the post-delta relation.
func TestPatchSummarizeMatchesFullResummarize(t *testing.T) {
	rel := testRelation(t, 97)
	src := rng.NewSource(11)
	pre := rel.Snapshot()

	mk := func(r *relation.Relation) *ScenarioCursor {
		return &ScenarioCursor{
			Name:  "c0",
			Src:   src,
			Rel:   r,
			Const: 0.5,
			Terms: []Term{{Coef: 1, Attr: "gain"}, {Coef: -0.25, Attr: "cost"}},
			Block: 16,
		}
	}
	chosen := []int{4, 0, 9, 2, 7}
	accel := make([]bool, 97)
	for i := 0; i < 97; i += 3 {
		accel[i] = true
	}
	prev, err := mk(pre).Summarize(context.Background(), chosen, scenario.Min, accel, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Dir != scenario.Min || prev.Accel == nil {
		t.Fatal("summary did not record its fold inputs")
	}

	touched := []int{3, 40, 41, 96}
	patch := map[int]float64{}
	for _, i := range touched {
		patch[i] = 100 + float64(i)
	}
	if _, err := rel.ApplyDelta(&relation.Delta{Set: map[string]map[int]float64{"cost": patch}}); err != nil {
		t.Fatal(err)
	}
	post := rel.Snapshot()

	c0 := Counters()
	patched, err := mk(post).PatchSummarize(context.Background(), prev, touched)
	if err != nil {
		t.Fatal(err)
	}
	c1 := Counters()
	if got := c1.SummaryTuplesPatched - c0.SummaryTuplesPatched; got != int64(len(touched)) {
		t.Fatalf("patched %d tuples, want %d", got, len(touched))
	}
	if got := c1.SummaryTuplesReused - c0.SummaryTuplesReused; got != int64(97-len(touched)) {
		t.Fatalf("reused %d tuples, want %d", got, 97-len(touched))
	}

	full, err := mk(post).Summarize(context.Background(), chosen, scenario.Min, accel, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Values {
		if patched.Values[i] != full.Values[i] {
			t.Fatalf("tuple %d: patched %v, full %v", i, patched.Values[i], full.Values[i])
		}
	}
	// The touched tuples actually moved (the test would be vacuous
	// otherwise), and the pre-delta summary is untouched by the patch.
	movedAny := false
	for _, i := range touched {
		if prev.Values[i] != patched.Values[i] {
			movedAny = true
		}
	}
	if !movedAny {
		t.Fatal("no touched tuple changed its summary value")
	}
}

// TestSetPatchSummarizeMatches does the same for the materialized path.
func TestSetPatchSummarizeMatches(t *testing.T) {
	rel := testRelation(t, 31)
	src := rng.NewSource(3)
	pre := rel.Snapshot()

	gen := func(r *relation.Relation) *scenario.Set {
		ids := make([]int, 8)
		rows := make([][]float64, 8)
		for j := 0; j < 8; j++ {
			ids[j] = j
			row := make([]float64, r.N())
			for i := 0; i < r.N(); i++ {
				g, err := r.Value(src, "gain", i, j)
				if err != nil {
					t.Fatal(err)
				}
				c, err := r.Value(src, "cost", i, j)
				if err != nil {
					t.Fatal(err)
				}
				row[i] = g - 0.25*c
			}
			rows[j] = row
		}
		return scenario.FromRows("c0", ids, rows)
	}
	chosen := []int{1, 5, 2}
	prev := gen(pre).Summarize(chosen, scenario.Max, nil)

	touched := []int{0, 17}
	if _, err := rel.ApplyDelta(&relation.Delta{Set: map[string]map[int]float64{"cost": {0: -50, 17: 50}}}); err != nil {
		t.Fatal(err)
	}
	post := gen(rel.Snapshot())
	patched := post.PatchSummarize(prev, touched)
	full := post.Summarize(chosen, scenario.Max, nil)
	for i := range full.Values {
		if patched.Values[i] != full.Values[i] {
			t.Fatalf("tuple %d: patched %v, full %v", i, patched.Values[i], full.Values[i])
		}
	}
}
