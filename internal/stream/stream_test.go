package stream

import (
	"context"
	"testing"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/scenario"
)

// testRelation builds a relation with one deterministic and one stochastic
// attribute, the minimal shape both pipeline halves touch.
func testRelation(t *testing.T, n int) *relation.Relation {
	t.Helper()
	rel := relation.New("r", n)
	det := make([]float64, n)
	for i := range det {
		det[i] = float64(i%13) - 4
	}
	if err := rel.AddDet("cost", det); err != nil {
		t.Fatal(err)
	}
	dists := make([]dist.Dist, n)
	for i := range dists {
		dists[i] = dist.Normal{Mu: float64(i % 5), Sigma: 1 + float64(i%4)}
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 7, Dists: dists}); err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestTupleIterCoversRelation(t *testing.T) {
	rel := testRelation(t, 53)
	it := NewTupleIter(rel, []string{"cost"}, 16)
	want, err := rel.Det("cost")
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for {
		lo, hi, cols, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if lo != next {
			t.Fatalf("block starts at %d, want %d", lo, next)
		}
		for i := lo; i < hi; i++ {
			if cols[0][i-lo] != want[i] {
				t.Fatalf("tuple %d: %v, want %v", i, cols[0][i-lo], want[i])
			}
		}
		next = hi
	}
	if next != rel.N() {
		t.Fatalf("iterated %d of %d tuples", next, rel.N())
	}
}

func TestFilterPushdown(t *testing.T) {
	rel := testRelation(t, 40)
	before := Counters()
	kept, err := Filter(rel, []string{"cost"}, func(get func(string) float64) bool {
		return get("cost") > 0
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	det, _ := rel.Det("cost")
	var want []int
	for i, v := range det {
		if v > 0 {
			want = append(want, i)
		}
	}
	if len(kept) != len(want) {
		t.Fatalf("kept %d tuples, want %d", len(kept), len(want))
	}
	for i := range kept {
		if kept[i] != want[i] {
			t.Fatalf("kept[%d] = %d, want %d", i, kept[i], want[i])
		}
	}
	after := Counters()
	if got := after.PushdownKept - before.PushdownKept; got != int64(len(want)) {
		t.Fatalf("PushdownKept grew by %d, want %d", got, len(want))
	}
	if got := after.PushdownFiltered - before.PushdownFiltered; got != int64(rel.N()-len(want)) {
		t.Fatalf("PushdownFiltered grew by %d, want %d", got, rel.N()-len(want))
	}

	mask, err := MaskOf(rel, []string{"cost"}, func(get func(string) float64) bool {
		return get("cost") > 0
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mask {
		if mask[i] != (det[i] > 0) {
			t.Fatalf("mask[%d] = %v, want %v", i, mask[i], det[i] > 0)
		}
	}
}

// TestCursorSummarizeMatchesMaterialized is the streamed ≡ materialized
// parity matrix at the scenario layer: the cursor's block-wise summary must
// be bit-identical to scenario.Set.Summarize for every direction, worker
// count, block size, and acceleration mask.
func TestCursorSummarizeMatchesMaterialized(t *testing.T) {
	rel := testRelation(t, 41)
	src := rng.NewSource(17)
	const m = 24
	set, err := scenario.Generate(src, rel, "gain", 0, m)
	if err != nil {
		t.Fatal(err)
	}
	chosen := []int{0, 2, 3, 7, 11, 18, 23}
	accel := make([]bool, rel.N())
	for i := range accel {
		accel[i] = i%4 == 1
	}
	mask := make([]bool, rel.N())
	for i := range mask {
		mask[i] = i%6 != 5
	}
	ctx := context.Background()
	for _, withMask := range []bool{false, true} {
		cm := []bool(nil)
		setVals := set
		if withMask {
			cm = mask
			// Materialized reference under the mask: re-generate and zero the
			// masked rows exactly like translate's applyMask.
			setVals, err = scenario.Generate(src, rel, "gain", 0, m)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < m; j++ {
				row := setVals.Row(j)
				for i := range row {
					if !mask[i] {
						row[i] = 0
					}
				}
			}
		}
		for _, block := range []int{1, 5, 0} {
			cur := &ScenarioCursor{Name: "gain", Src: src, Rel: rel, Terms: []Term{{Coef: 1, Attr: "gain"}}, Mask: cm, Block: block}
			for _, dir := range []scenario.Direction{Min, Max} {
				for _, acc := range [][]bool{nil, accel} {
					want := setVals.Summarize(chosen, dir, acc)
					for _, workers := range []int{1, 2, 8, -1} {
						got, err := cur.Summarize(ctx, chosen, dir, acc, workers)
						if err != nil {
							t.Fatal(err)
						}
						for i := range want.Values {
							if got.Values[i] != want.Values[i] {
								t.Fatalf("mask=%v block=%d dir=%v workers=%d: value[%d] = %v, want %v",
									withMask, block, dir, workers, i, got.Values[i], want.Values[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestCursorPickMatchesGreedyPick asserts that streamed scoring plus
// scenario.Pick reproduces Set.GreedyPick exactly: same scores, same stable
// order, same chosen IDs.
func TestCursorPickMatchesGreedyPick(t *testing.T) {
	rel := testRelation(t, 31)
	src := rng.NewSource(9)
	const m = 30
	set, err := scenario.Generate(src, rel, "gain", 0, m)
	if err != nil {
		t.Fatal(err)
	}
	cur := &ScenarioCursor{Name: "gain", Src: src, Rel: rel, Terms: []Term{{Coef: 1, Attr: "gain"}}}
	x := make([]float64, rel.N())
	for i := range x {
		if i%3 == 0 {
			x[i] = float64(1 + i%4)
		}
	}
	parts := scenario.PartitionIDs(m, 4, 99)
	ctx := context.Background()
	for _, part := range parts {
		for _, alpha := range []float64{0.25, 0.5, 1} {
			for _, dir := range []scenario.Direction{Min, Max} {
				want := set.GreedyPick(part, alpha, dir, x)
				for _, workers := range []int{1, 2, 8, -1} {
					scores, err := cur.ScoreMap(ctx, part, x, workers)
					if err != nil {
						t.Fatal(err)
					}
					got := scenario.Pick(part, alpha, dir, scores)
					if len(got) != len(want) {
						t.Fatalf("alpha=%v dir=%v: picked %d, want %d", alpha, dir, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("alpha=%v dir=%v workers=%d: pick[%d] = %d, want %d",
								alpha, dir, workers, i, got[i], want[i])
						}
					}
				}
				// nil x must match too (leading scenarios, no scoring).
				wantNil := set.GreedyPick(part, alpha, dir, nil)
				gotNil := scenario.Pick(part, alpha, dir, nil)
				for i := range gotNil {
					if gotNil[i] != wantNil[i] {
						t.Fatalf("nil x: pick[%d] = %d, want %d", i, gotNil[i], wantNil[i])
					}
				}
			}
		}
	}
}

func TestCursorRealizeMatchesSetRow(t *testing.T) {
	rel := testRelation(t, 19)
	src := rng.NewSource(3)
	set, err := scenario.Generate(src, rel, "gain", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	cur := &ScenarioCursor{Name: "gain", Src: src, Rel: rel, Terms: []Term{{Coef: 1, Attr: "gain"}}}
	out := make([]float64, rel.N())
	for j := 0; j < 8; j++ {
		if err := cur.Realize(j, out); err != nil {
			t.Fatal(err)
		}
		row := set.Row(j)
		for i := range out {
			if out[i] != row[i] {
				t.Fatalf("scenario %d tuple %d: %v, want %v", j, i, out[i], row[i])
			}
		}
	}
}

func TestCursorSummarizeCancelled(t *testing.T) {
	rel := testRelation(t, 10)
	cur := &ScenarioCursor{Name: "gain", Src: rng.NewSource(1), Rel: rel, Terms: []Term{{Coef: 1, Attr: "gain"}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cur.Summarize(ctx, []int{0, 1}, Min, nil, 2); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
