// Package stream is the streaming scenario pipeline: composable block-wise
// iterators over tuples (TupleIter) and scenario realizations
// (ScenarioCursor) that replace materialized N×M scenario matrices with
// constant-memory folds.
//
// Two disciplines make the pipeline exact, not approximate:
//
//   - Predicate pushdown. WHERE-clause predicates evaluate against
//     deterministic attributes block-by-block *before* any scenario is
//     generated (Filter/MaskOf), so filtered tuples never cost a single
//     realization — the "filter before you realize" rule.
//
//   - Coordinate purity. Every realization is a pure function of its
//     (attr, tuple, scenario) coordinate: substream seeds are derived by
//     the same splittable-hash scheme as rng.Source.Split, keyed by the
//     base tuple index (views remap through relation's OrigIndex). A value
//     therefore does not depend on generation order, block size, or worker
//     count, which is what keeps streamed summaries bit-identical to the
//     materialized path.
//
// The cursor's folds replicate the materialized arithmetic operation for
// operation (same per-tuple term order as translate.ExprRealize, same fold
// order as scenario.Set.Summarize, same skip rule as Set.Score), so
// streamed ≡ materialized holds exactly, for every worker count.
package stream

import (
	"context"
	"fmt"
	"sync/atomic"

	"spq/internal/par"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/scenario"
)

// DefaultBlockSize is the tuple-block granularity used when a caller does
// not choose one: big enough to amortize per-block accounting, small enough
// that a block of one column is a few KiB resident.
const DefaultBlockSize = 1024

// Pipeline-wide counters, exported through Counters for the engine's
// /metrics and /stats surfaces.
var (
	blocksGenerated      atomic.Int64
	valuesGenerated      atomic.Int64
	pushdownKept         atomic.Int64
	pushdownFiltered     atomic.Int64
	summaryTuplesPatched atomic.Int64
	summaryTuplesReused  atomic.Int64
)

// CountersSnapshot reports the cumulative pipeline counters.
type CountersSnapshot struct {
	// BlocksGenerated counts tuple blocks realized by scenario cursors.
	BlocksGenerated int64
	// ValuesGenerated counts individual scenario values realized.
	ValuesGenerated int64
	// PushdownKept / PushdownFiltered count tuples that survived / were
	// eliminated by predicate pushdown before scenario generation.
	PushdownKept     int64
	PushdownFiltered int64
	// SummaryTuplesPatched / SummaryTuplesReused count summary tuples
	// recomputed by delta patching versus carried over unchanged.
	SummaryTuplesPatched int64
	SummaryTuplesReused  int64
}

// Counters returns the cumulative pipeline counters.
func Counters() CountersSnapshot {
	return CountersSnapshot{
		BlocksGenerated:      blocksGenerated.Load(),
		ValuesGenerated:      valuesGenerated.Load(),
		PushdownKept:         pushdownKept.Load(),
		PushdownFiltered:     pushdownFiltered.Load(),
		SummaryTuplesPatched: summaryTuplesPatched.Load(),
		SummaryTuplesReused:  summaryTuplesReused.Load(),
	}
}

// TupleIter iterates the deterministic attributes of a relation in fixed-size
// tuple blocks without promoting lazy columns: each Next yields the half-open
// tuple range and one reused value slice per requested attribute. It is the
// scan operator predicate pushdown runs on.
type TupleIter struct {
	rel   *relation.Relation
	attrs []string
	block int
	pos   int
	cols  [][]float64
}

// NewTupleIter creates a block iterator over the given deterministic
// attributes. block ≤ 0 uses DefaultBlockSize. Attribute existence is
// validated on the first block read (mirroring relation's errors).
func NewTupleIter(rel *relation.Relation, attrs []string, block int) *TupleIter {
	if block <= 0 {
		block = DefaultBlockSize
	}
	cols := make([][]float64, len(attrs))
	for i := range cols {
		cols[i] = make([]float64, block)
	}
	return &TupleIter{rel: rel, attrs: attrs, block: block, cols: cols}
}

// Next yields the next block: the tuple range [lo, hi) and, per attribute,
// the values of tuples lo..hi-1. The slices are reused between calls. ok is
// false when the relation is exhausted.
func (it *TupleIter) Next() (lo, hi int, cols [][]float64, ok bool, err error) {
	n := it.rel.N()
	if it.pos >= n {
		return n, n, nil, false, nil
	}
	lo = it.pos
	hi = lo + it.block
	if hi > n {
		hi = n
	}
	for i, a := range it.attrs {
		it.cols[i] = it.cols[i][:hi-lo]
		if err := it.rel.DetBlock(a, lo, it.cols[i]); err != nil {
			return lo, hi, nil, false, err
		}
	}
	it.pos = hi
	return lo, hi, it.cols, true, nil
}

// Filter evaluates pred over the deterministic attributes block-by-block and
// returns the indices of the tuples that survive — predicate pushdown: no
// scenario value is ever generated for a filtered tuple. pred receives a
// getter over the named attributes for the current tuple.
func Filter(rel *relation.Relation, attrs []string, pred func(get func(string) float64) bool, block int) ([]int, error) {
	kept := []int{}
	it := NewTupleIter(rel, attrs, block)
	for {
		lo, hi, cols, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		keptBefore := len(kept)
		for t := lo; t < hi; t++ {
			get := func(a string) float64 {
				for i, name := range attrs {
					if name == a {
						return cols[i][t-lo]
					}
				}
				return 0
			}
			if pred(get) {
				kept = append(kept, t)
			}
		}
		keptHere := len(kept) - keptBefore
		pushdownKept.Add(int64(keptHere))
		pushdownFiltered.Add(int64(hi - lo - keptHere))
	}
	return kept, nil
}

// MaskOf evaluates pred block-by-block like Filter but returns an inclusion
// mask instead of indices (the PaQL general-form aggregate filter shape).
func MaskOf(rel *relation.Relation, attrs []string, pred func(get func(string) float64) bool, block int) ([]bool, error) {
	mask := make([]bool, rel.N())
	it := NewTupleIter(rel, attrs, block)
	for {
		lo, hi, cols, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for t := lo; t < hi; t++ {
			get := func(a string) float64 {
				for i, name := range attrs {
					if name == a {
						return cols[i][t-lo]
					}
				}
				return 0
			}
			mask[t] = pred(get)
		}
	}
	return mask, nil
}

// Term is one coefficient·attribute term of a linear inner function.
type Term struct {
	Coef float64
	Attr string
}

// ScenarioCursor produces scenario realizations of one linear inner function
// Const + Σ Coef·Attr block-wise, never holding more than one tuple block of
// values. Tuples excluded by Mask realize as exactly 0.0, matching the
// materialized path's applyMask. A cursor is immutable and safe for
// concurrent use.
type ScenarioCursor struct {
	// Name labels summaries produced by the cursor (the constraint name).
	Name  string
	Src   rng.Source
	Rel   *relation.Relation
	Const float64
	Terms []Term
	Mask  []bool
	// Block is the tuple-block granularity (≤ 0 → DefaultBlockSize).
	Block int
}

func (c *ScenarioCursor) block() int {
	if c.Block <= 0 {
		return DefaultBlockSize
	}
	return c.Block
}

// value realizes the inner function for one (tuple, scenario) coordinate
// with the exact term order of translate.ExprRealize: start from Const, add
// Coef·attr term by term.
func (c *ScenarioCursor) value(tuple, scen int) (float64, error) {
	if c.Mask != nil && !c.Mask[tuple] {
		return 0, nil
	}
	v := c.Const
	for _, t := range c.Terms {
		av, err := c.Rel.Value(c.Src, t.Attr, tuple, scen)
		if err != nil {
			return 0, err
		}
		v += t.Coef * av
	}
	return v, nil
}

// Summarize folds the α-summary of the chosen absolute scenario IDs directly
// off the cursor: tuple-major, block-wise, Θ(N) output and one block of
// state, with the identical fold order to scenario.Set.Summarize (initialize
// from chosen[0], then compare chosen[1:] in order). accel has the same
// meaning as there. The result is bit-identical to summarizing a
// materialized set for every worker count.
func (c *ScenarioCursor) Summarize(ctx context.Context, chosen []int, dir scenario.Direction, accel []bool, workers int) (*scenario.Summary, error) {
	n := c.Rel.N()
	out := &scenario.Summary{Attr: c.Name, Values: make([]float64, n), Chosen: append([]int(nil), chosen...), Dir: dir, Accel: cloneAccel(accel)}
	bs := c.block()
	err := par.Ranges(ctx, n, workers, func(_, shardLo, shardHi int) error {
		for lo := shardLo; lo < shardHi; lo += bs {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + bs
			if hi > shardHi {
				hi = shardHi
			}
			for i := lo; i < hi; i++ {
				d := dir
				if accel != nil && accel[i] {
					d = d.Opposite()
				}
				v, err := c.value(i, chosen[0])
				if err != nil {
					return err
				}
				for _, j := range chosen[1:] {
					w, err := c.value(i, j)
					if err != nil {
						return err
					}
					if (d == Min && w < v) || (d == Max && w > v) {
						v = w
					}
				}
				out.Values[i] = v
			}
			blocksGenerated.Add(1)
			valuesGenerated.Add(int64((hi - lo) * len(chosen)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func cloneAccel(accel []bool) []bool {
	if accel == nil {
		return nil
	}
	return append([]bool(nil), accel...)
}

// PatchSummarize re-folds only the touched tuples of a previously built
// summary against this cursor's (post-delta) relation, reusing every other
// tuple unchanged — k×|Chosen| realizations instead of N×|Chosen|. The
// cursor must realize the same inner function over the same scenario
// stream as the one that built prev; untouched tuples then realize
// identically (coordinate-pure VGs), making the patched summary
// bit-identical to a full re-summarization.
func (c *ScenarioCursor) PatchSummarize(ctx context.Context, prev *scenario.Summary, touched []int) (*scenario.Summary, error) {
	out := &scenario.Summary{
		Attr:   prev.Attr,
		Values: append([]float64(nil), prev.Values...),
		Chosen: prev.Chosen,
		Dir:    prev.Dir,
		Accel:  prev.Accel,
	}
	for _, i := range touched {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := prev.Dir
		if prev.Accel != nil && prev.Accel[i] {
			d = d.Opposite()
		}
		v, err := c.value(i, prev.Chosen[0])
		if err != nil {
			return nil, err
		}
		for _, j := range prev.Chosen[1:] {
			w, err := c.value(i, j)
			if err != nil {
				return nil, err
			}
			if (d == Min && w < v) || (d == Max && w > v) {
				v = w
			}
		}
		out.Values[i] = v
	}
	valuesGenerated.Add(int64(len(touched) * len(prev.Chosen)))
	summaryTuplesPatched.Add(int64(len(touched)))
	summaryTuplesReused.Add(int64(len(prev.Values) - len(touched)))
	return out, nil
}

// Local aliases keep the fold conditions textually identical to the
// materialized implementation.
const (
	Min = scenario.Min
	Max = scenario.Max
)

// Scores computes the scenario scores Σ_i s_ij·x_i for the given absolute
// scenario IDs (aligned with ids), realizing only the tuples with x_i ≠ 0 —
// the same skip rule, tuple order, and accumulation order as
// scenario.Set.Score, so greedy selection orders scenarios identically to
// the materialized path.
func (c *ScenarioCursor) Scores(ctx context.Context, ids []int, x []float64, workers int) ([]float64, error) {
	scores := make([]float64, len(ids))
	var pkg []int
	for i, xi := range x {
		if xi != 0 {
			pkg = append(pkg, i)
		}
	}
	err := par.Ranges(ctx, len(ids), workers, func(_, lo, hi int) error {
		for k := lo; k < hi; k++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			sum := 0.0
			for _, i := range pkg {
				v, err := c.value(i, ids[k])
				if err != nil {
					return err
				}
				sum += v * x[i]
			}
			scores[k] = sum
		}
		if hi > lo {
			valuesGenerated.Add(int64((hi - lo) * len(pkg)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// ScoreMap is Scores keyed by scenario ID, the shape scenario.Pick consumes.
func (c *ScenarioCursor) ScoreMap(ctx context.Context, ids []int, x []float64, workers int) (map[int]float64, error) {
	scores, err := c.Scores(ctx, ids, x, workers)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(ids))
	for k, id := range ids {
		out[id] = scores[k]
	}
	return out, nil
}

// Realize fills out (length N) with the realized inner-function values of
// one scenario, applying the cursor's mask — the row shape FormulateSAA
// consumes, provided for parity tests and spot checks.
func (c *ScenarioCursor) Realize(scen int, out []float64) error {
	if len(out) != c.Rel.N() {
		return fmt.Errorf("stream: output slice length %d, want %d", len(out), c.Rel.N())
	}
	for i := range out {
		v, err := c.value(i, scen)
		if err != nil {
			return err
		}
		out[i] = v
	}
	valuesGenerated.Add(int64(len(out)))
	return nil
}
